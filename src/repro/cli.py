"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run a monitoring experiment and write the trace (CSV or JSONL).
``report``
    Run an experiment and print the paper-vs-measured report
    (``--markdown`` for EXPERIMENTS.md-style output).
``calibrate``
    Print the calibration scorecard.
``bench-host``
    Execute the NBench kernels on this host.
``probe-local``
    Emit one W32Probe-format report for this (Linux) host.
``compare``
    Run the related-work environment comparison.
``obs``
    Summarise an exported observability snapshot (``run --obs-out``):
    per-lab pass-duration histograms, retry/timeout counters, phase
    timings and the injected-vs-observed fault reconciliation.
``recovery``
    Inspect a crash-safe run directory (``run --recover-dir``):
    checkpoint ladder, journal segment chain, quarantine ledger and
    whether (and from where) the run is resumable.
``resilience``
    Inspect the adaptive resilience control plane: run one fault
    scenario with a policy attached and print breaker / hedge / shed
    accounting, or ``--differential`` for the policy-on vs policy-off
    comparison across the whole scenario catalog.
``live``
    Streaming campus mode: run the experiment paced against the wall
    clock (``--rate 60x``, ``--rate max``) while a threaded query
    service serves running rollups (``/stats``, ``/labs/<name>``,
    ``/machines/<id>``, ``/health``, ``/subscribe``); or replay a
    finished journal (``--replay DIR``) into the same rollups.
``worker``
    Serve a networked campaign coordinator as a shard worker:
    ``repro worker tcp://host:port``.  The campaign side is ``repro
    run --shards N --listen tcp://host:port`` (add ``--workers M`` to
    spawn M loopback workers locally); see ``docs/distributed.md``.

Every command accepts ``--days`` and ``--seed``; defaults reproduce the
paper (77 days, seed 2005) where that makes sense and use short runs
where it does not.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.config import ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Resource Usage of Windows Computer "
        "Laboratories' (ICPP 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, days: int) -> None:
        p.add_argument("--days", type=int, default=days,
                       help=f"experiment length in days (default {days})")
        p.add_argument("--seed", type=int, default=2005,
                       help="root random seed (default 2005)")

    p_run = sub.add_parser("run", help="run an experiment, write the trace")
    add_common(p_run, 77)
    p_run.add_argument("--out", default="trace.csv",
                       help="output path (.csv or .jsonl)")
    p_run.add_argument("--obs-out", default=None, metavar="SNAPSHOT",
                       help="instrument the run and export the "
                       "observability snapshot to this JSONL path")
    p_run.add_argument("--recover-dir", default=None, metavar="DIR",
                       help="enable crash-safe persistence: journal every "
                       "sample and checkpoint the run state into DIR")
    p_run.add_argument("--checkpoint-every", type=int, default=8,
                       metavar="N", help="checkpoint every N iterations "
                       "(default 8; needs --recover-dir)")
    p_run.add_argument("--resume", action="store_true",
                       help="resume the crashed run in --recover-dir from "
                       "its latest valid checkpoint")
    p_run.add_argument("--resilience", action="store_true",
                       help="attach the default ResiliencePolicy: circuit "
                       "breakers, adaptive deadlines, hedged probes and "
                       "load shedding (see docs/resilience.md)")
    p_run.add_argument("--shards", type=int, default=1, metavar="N",
                       help="collect the run as N lab-aligned worker "
                       "processes and merge a byte-identical trace "
                       "(default 1: the classic sequential run; with "
                       "--recover-dir the run becomes a supervised "
                       "campaign with per-shard crash recovery; see "
                       "docs/sharding.md and docs/shard_recovery.md)")
    p_run.add_argument("--supervise", action="store_true",
                       help="run sharded workers under the supervisor "
                       "control plane (heartbeats, liveness deadlines, "
                       "bounded restart) even without --recover-dir; "
                       "implied when --shards > 1 and --recover-dir are "
                       "combined")
    p_run.add_argument("--listen", default=None, metavar="ENDPOINT",
                       help="run the sharded campaign over the networked "
                       "control plane, coordinating TCP workers on "
                       "ENDPOINT (tcp://host:port; port 0 binds an "
                       "ephemeral port); workers attach with 'repro "
                       "worker' or --workers (see docs/distributed.md)")
    p_run.add_argument("--workers", type=int, default=None, metavar="M",
                       help="spawn M local worker processes against the "
                       "networked coordinator (implies --listen "
                       "tcp://127.0.0.1:0 when --listen is omitted)")
    p_run.add_argument("--machines", type=int, default=None, metavar="N",
                       help="scale the fleet to N machines by cycling "
                       "Table 1's lab mix (default: the paper's 169; "
                       "see docs/columnar.md for 10k-100k runs)")
    p_run.add_argument("--kernel", choices=("auto", "object", "columnar"),
                       default="auto",
                       help="probing-pass implementation: 'auto' picks "
                       "the columnar kernel when eligible, 'object' "
                       "forces the per-object path, 'columnar' fails "
                       "loudly if ineligible (default auto; composes "
                       "with --shards)")
    p_run.add_argument("--behavioural", choices=("exact", "statistical"),
                       default="exact",
                       help="behavioural equivalence mode for the "
                       "columnar kernel: 'exact' keeps the event loop "
                       "byte-identical to the object path at any size, "
                       "'statistical' switches fleets above the "
                       "threshold to the fully vectorised behavioural "
                       "engine (default exact; see docs/columnar.md)")
    p_run.add_argument("--behavioural-threshold", type=int, default=None,
                       metavar="N",
                       help="fleet size above which --behavioural "
                       "statistical engages the vectorised engine "
                       "(default 1000)")

    p_rep = sub.add_parser("report", help="paper-vs-measured report")
    add_common(p_rep, 77)
    p_rep.add_argument("--markdown", action="store_true",
                       help="emit Markdown instead of fixed-width text")
    p_rep.add_argument("--out", default=None,
                       help="also write the report to this file")

    p_cal = sub.add_parser("calibrate", help="calibration scorecard")
    add_common(p_cal, 21)

    p_bench = sub.add_parser("bench-host", help="run NBench on this host")
    p_bench.add_argument("--seconds", type=float, default=0.25,
                         help="measurement time per kernel")

    sub.add_parser("probe-local", help="one W32Probe report for this host")

    p_cmp = sub.add_parser("compare", help="baseline environment comparison")
    add_common(p_cmp, 7)

    p_obs = sub.add_parser("obs", help="summarise an observability snapshot")
    p_obs.add_argument("snapshot", help="snapshot JSONL written by "
                       "'repro run --obs-out'")
    p_obs.add_argument("--json", action="store_true",
                       help="emit a JSON digest instead of tables")
    p_obs.add_argument("--markdown", action="store_true",
                       help="emit Markdown instead of fixed-width text")

    p_rec = sub.add_parser("recovery",
                           help="inspect a crash-safe run directory")
    p_rec.add_argument("run_dir", help="directory given to 'repro run "
                       "--recover-dir'")
    p_rec.add_argument("--json", action="store_true",
                       help="emit a JSON digest instead of tables")

    p_live = sub.add_parser("live", help="streaming campus mode with a "
                            "concurrent query service")
    add_common(p_live, 2)
    p_live.add_argument("--run-dir", default="live-run", metavar="DIR",
                        help="run directory; the journal lands in "
                        "DIR/journal (default live-run)")
    p_live.add_argument("--rate", default=None, metavar="RATE",
                        help="wall-clock pacing: simulated seconds per "
                        "wall second ('60x', '900', or 'max' for "
                        "unpaced; default 60x)")
    p_live.add_argument("--host", default="127.0.0.1",
                        help="query-service listen address "
                        "(default 127.0.0.1)")
    p_live.add_argument("--port", type=int, default=None, metavar="PORT",
                        help="query-service listen port (default 8765 "
                        "for live runs; 0 binds an ephemeral port; "
                        "omitted with --replay means no server)")
    p_live.add_argument("--machines", type=int, default=None, metavar="N",
                        help="scale the fleet to N machines by cycling "
                        "Table 1's lab mix (default: the paper's 169)")
    p_live.add_argument("--replay", default=None, metavar="JOURNAL",
                        help="replay a finished run's journal directory "
                        "into the rollups instead of simulating "
                        "(incompatible with --rate)")
    p_live.add_argument("--rollups-out", default=None, metavar="JSON",
                        help="write the final rollup snapshot to this "
                        "JSON file when the run (or replay) finishes")

    p_worker = sub.add_parser("worker", help="serve a networked campaign "
                              "coordinator as a shard worker")
    p_worker.add_argument("endpoint", help="coordinator endpoint "
                          "(tcp://host:port, from 'repro run --listen')")
    p_worker.add_argument("--id", default=None, metavar="WORKER_ID",
                          help="stable worker identity (default "
                          "hostname-pid); reconnects under the same id "
                          "resume the worker's leases")

    p_res = sub.add_parser("resilience",
                           help="inspect the adaptive control plane")
    add_common(p_res, 1)
    p_res.add_argument("--scenario", default="flapping",
                       help="fault scenario to run under (one of the "
                       "chaos catalog names, or 'none' for a fault-free "
                       "run; default flapping)")
    p_res.add_argument("--differential", action="store_true",
                       help="run policy-on vs policy-off across the whole "
                       "scenario catalog and print the dominance table")
    p_res.add_argument("--json", action="store_true",
                       help="emit a JSON digest instead of tables")
    p_res.add_argument("--out", default=None, metavar="REPORT",
                       help="also write the JSON digest to this file")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiment import run_experiment

    # Kernel pre-flight: combinations that are statically known to be
    # columnar-ineligible must exit 2 here, before any run directory or
    # observer is created, instead of failing mid-build.
    if args.kernel == "columnar":
        for flag, present in (
            ("--obs-out", bool(args.obs_out)),
            ("--resilience", bool(args.resilience)),
            ("--recover-dir", args.recover_dir is not None),
            ("--resume", bool(args.resume)),
        ):
            if present:
                print(f"error: --kernel columnar is incompatible with "
                      f"{flag}; the columnar pass replicates none of "
                      "that hook's behaviour (use --kernel auto to fall "
                      "back to the object path; see docs/columnar.md)",
                      file=sys.stderr)
                return 2
    if (args.behavioural_threshold is not None
            and args.behavioural_threshold < 0):
        print(f"error: --behavioural-threshold must be non-negative, got "
              f"{args.behavioural_threshold}", file=sys.stderr)
        return 2
    observer = None
    if args.obs_out:
        from repro.obs import Observer

        observer = Observer()
    if args.resume and not args.recover_dir:
        print("error: --resume needs --recover-dir", file=sys.stderr)
        return 2
    if args.resume and args.resilience:
        print("error: --resilience cannot be changed on --resume; the "
              "resumed run keeps its checkpointed policy", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be at least 1, got {args.shards}",
              file=sys.stderr)
        return 2
    # Networked-mode validation happens here, before anything touches
    # the filesystem: a conflicting or malformed invocation must exit 2
    # without creating a run directory.
    net = None
    if args.listen is not None or args.workers is not None:
        from repro.shard.net.config import NetConfig, parse_endpoint

        if args.workers is not None and args.workers < 1:
            print(f"error: --workers must be at least 1, got "
                  f"{args.workers}", file=sys.stderr)
            return 2
        if args.shards < 2:
            print("error: --listen/--workers run a networked campaign, "
                  f"which needs --shards >= 2 (got {args.shards})",
                  file=sys.stderr)
            return 2
        if args.supervise:
            print("error: --supervise conflicts with --listen/--workers; "
                  "the networked coordinator is the campaign's control "
                  "plane", file=sys.stderr)
            return 2
        if args.resume:
            print("error: --resume cannot drive a networked campaign "
                  "(the shard-<k>/ namespaces are worker-host-local); "
                  "resume it locally without --listen/--workers",
                  file=sys.stderr)
            return 2
        endpoint = args.listen if args.listen is not None \
            else "tcp://127.0.0.1:0"
        try:
            parse_endpoint(endpoint)
        except ValueError as exc:
            print(f"error: --listen: {exc}", file=sys.stderr)
            return 2
        net = NetConfig(endpoint=endpoint, spawn_workers=args.workers)
    resume_shards = None
    if args.resume:
        # Validate the recovery directory up front, before anything is
        # created on disk: a missing or foreign directory must fail
        # with a usage error, not half-build a run.
        from repro.recovery import CampaignManifest, is_campaign_dir

        rd = pathlib.Path(args.recover_dir)
        if not rd.is_dir():
            print(f"error: --resume: no such recovery directory "
                  f"{args.recover_dir!r}", file=sys.stderr)
            return 2
        campaign = is_campaign_dir(rd)
        sequential = (rd / "journal").is_dir() or (rd / "checkpoints").is_dir()
        # An existing-but-empty directory is a valid sequential cold
        # restart; a directory holding unrelated files is not a run dir.
        if not campaign and not sequential and any(rd.iterdir()):
            print(f"error: --resume: {args.recover_dir!r} holds neither a "
                  "campaign manifest nor a journal/checkpoint tree; it is "
                  "not a recovery run directory", file=sys.stderr)
            return 2
        if args.shards > 1 and not campaign:
            print(f"error: --resume --shards {args.shards}: "
                  f"{args.recover_dir!r} holds a sequential run, not a "
                  "sharded campaign; resume it with --shards 1",
                  file=sys.stderr)
            return 2
        if campaign:
            from repro.errors import RecoveryError

            try:
                resume_shards = CampaignManifest.load(rd).n_shards
            except RecoveryError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.shards > 1 and args.shards != resume_shards:
                print(f"error: --resume --shards {args.shards}: the "
                      f"campaign in {args.recover_dir!r} was collected "
                      f"with {resume_shards} shards", file=sys.stderr)
                return 2
    if args.machines is not None and args.machines < 1:
        print(f"error: --machines must be at least 1, got {args.machines}",
              file=sys.stderr)
        return 2
    if args.machines is not None and args.resume:
        print("error: --machines cannot be changed on --resume; the "
              "resumed run keeps its checkpointed fleet", file=sys.stderr)
        return 2
    policy = None
    if args.resilience:
        from repro.resilience import ResiliencePolicy

        policy = ResiliencePolicy(seed=args.seed)
    # Resuming a campaign adopts its shard count: the checkpointed
    # config has shards=N baked in, and the digest check would reject
    # a config rebuilt with the default.
    config = ExperimentConfig(
        days=args.days, seed=args.seed,
        shards=args.shards if resume_shards is None else resume_shards,
        kernel=args.kernel,
        behavioural_equivalence=args.behavioural,
        **({} if args.behavioural_threshold is None
           else {"behavioural_threshold": args.behavioural_threshold}),
    )
    supervise = True if args.supervise else None
    run_kwargs = {}
    if args.machines is not None:
        from repro.machines.hardware import scaled_labs

        run_kwargs["labs"] = scaled_labs(args.machines)
    if args.resume:
        from repro.errors import RecoveryError, ShardWorkerError
        from repro.recovery import RecoveryConfig

        rcfg = RecoveryConfig(run_dir=args.recover_dir,
                              checkpoint_every=args.checkpoint_every)
        try:
            result = run_experiment(config, resume_from=rcfg,
                                    supervise=supervise)
        except ShardWorkerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except RecoveryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.recover_dir:
        from repro.errors import RecoveryError, ShardWorkerError
        from repro.recovery import RecoveryConfig

        rcfg = RecoveryConfig(run_dir=args.recover_dir,
                              checkpoint_every=args.checkpoint_every)
        try:
            result = run_experiment(config, observer=observer, recovery=rcfg,
                                    resilience=policy, supervise=supervise,
                                    net=net, **run_kwargs)
        except ShardWorkerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except RecoveryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.errors import ShardWorkerError

        try:
            result = run_experiment(config, observer=observer,
                                    resilience=policy, supervise=supervise,
                                    net=net, **run_kwargs)
        except ShardWorkerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            # e.g. kernel='columnar' on an ineligible configuration
            print(f"error: {exc}", file=sys.stderr)
            return 2
    out = pathlib.Path(args.out)
    if out.suffix == ".jsonl":
        result.store.write_jsonl(out)
    elif out.suffix == ".csv":
        result.store.write_csv(out)
    else:
        print(f"error: unsupported trace format {out.suffix!r} "
              "(use .csv or .jsonl)", file=sys.stderr)
        return 2
    meta = result.meta
    # A sharded run has no live coordinator; the merged accounting on
    # the trace meta carries the identical numbers.
    rate = (meta.samples_collected / meta.attempts) if meta.attempts else 0.0
    print(f"{len(result.store)} samples -> {out} "
          f"(response rate {100 * rate:.1f}%)")
    if policy is not None or (result.coordinator is not None
                              and result.coordinator.resilience is not None):
        print(f"resilience: {meta.breaker_skipped} breaker-skipped, "
              f"{meta.shed} shed, {meta.hedges} hedges "
              f"({meta.hedge_wins} won), "
              f"{meta.retries_skipped} retries skipped")
    if args.obs_out and result.observer is not None:
        # On resume the instrumented observer is the checkpointed one.
        result.observer.snapshot().write_jsonl(args.obs_out)
        print(f"observability snapshot -> {args.obs_out}")
    elif args.obs_out and result.obs_snapshot is not None:
        # Sharded runs return the merged per-worker snapshot instead.
        result.obs_snapshot.write_jsonl(args.obs_out)
        print(f"observability snapshot -> {args.obs_out}")
    info = result.recovery
    if info is not None:
        line = (f"recovery: {info.checkpoints_written} checkpoints, "
                f"{info.segments_sealed} segments sealed, "
                f"{info.samples_journaled} samples journaled")
        if info.resumed_from_iteration is not None:
            line += (f" (resumed from iteration "
                     f"{info.resumed_from_iteration}, "
                     f"{info.replay_verified} iterations re-verified)")
        elif info.cold_restart:
            line += (f" (cold restart, {info.replay_verified} iterations "
                     "re-verified)")
        print(line)
        if info.quarantine_entries:
            print(f"quarantined {len(info.quarantine_entries)} damaged "
                  f"artefacts (see {info.run_dir / 'quarantine'})")
    camp = result.campaign
    if camp is not None:
        mode = "networked" if net is not None else "supervised"
        line = (f"campaign: {camp.n_shards} shards {mode}, "
                f"{camp.total_restarts} restarts")
        if camp.run_dir is not None:
            line += f", manifest in {camp.run_dir}"
        print(line)
    deg = result.degraded
    if deg is not None:
        print(f"WARNING: partial result -- shards "
              f"{list(deg.lost_shards)} were lost "
              f"({deg.machines_lost}/{deg.machines_total} machines "
              f"missing, {100 * deg.coverage:.1f}% roster coverage); "
              "the trace is NOT roster-complete", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiment import run_experiment
    from repro.report.experiments import generate_report
    from repro.report.markdown import markdown_report

    result = run_experiment(ExperimentConfig(days=args.days, seed=args.seed))
    report = generate_report(result)
    text = markdown_report(report) if args.markdown else report.render()
    print(text)
    if args.out:
        pathlib.Path(args.out).write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n(written to {args.out})", file=sys.stderr)
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.calibration import evaluate_calibration
    from repro.experiment import run_experiment
    from repro.report.experiments import generate_report
    from repro.report.tables import Table

    result = run_experiment(ExperimentConfig(days=args.days, seed=args.seed))
    results = evaluate_calibration(generate_report(result))
    table = Table(["target", "paper", "measured", "ok"])
    for r in results:
        table.add_row([r.target.name, r.target.paper_value, r.measured,
                       "yes" if r.ok else "NO"])
    print(table.render())
    passed = sum(r.ok for r in results)
    print(f"\n{passed}/{len(results)} targets within tolerance")
    return 0 if passed == len(results) else 1


def _cmd_bench_host(args: argparse.Namespace) -> int:
    from repro.nbench.runner import run_benchmark_suite
    from repro.report.tables import Table

    timings, int_idx, fp_idx = run_benchmark_suite(min_duration=args.seconds)
    table = Table(["kernel", "group", "rate (runs/s)"])
    for name, t in timings.items():
        table.add_row([name, t.group, t.rate])
    print(table.render())
    print(f"\nINT index: {int_idx:.2f}   FP index: {fp_idx:.2f}")
    return 0


def _cmd_probe_local(args: argparse.Namespace) -> int:
    del args
    from repro.ddc.localprobe import local_probe_available, read_local_report

    if not local_probe_available():
        print("error: local probe needs a Linux /proc filesystem",
              file=sys.stderr)
        return 2
    sys.stdout.write(read_local_report())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import compare_baselines

    _, table = compare_baselines(seed=args.seed, days=args.days)
    print(table)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.errors import SnapshotFormatError
    from repro.obs import ObsSnapshot
    from repro.report.obs import obs_to_json, render_obs_report

    try:
        snapshot = ObsSnapshot.read_jsonl(args.snapshot)
    except FileNotFoundError:
        print(f"error: no such snapshot {args.snapshot!r}", file=sys.stderr)
        return 2
    except SnapshotFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(obs_to_json(snapshot))
    else:
        print(render_obs_report(snapshot, markdown=args.markdown))
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    import json

    from repro.report.recovery import recovery_status, render_recovery_report

    if not pathlib.Path(args.run_dir).is_dir():
        print(f"error: no such run directory {args.run_dir!r}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(recovery_status(args.run_dir), indent=2))
    else:
        print(render_recovery_report(args.run_dir))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    import json

    from repro.experiment import run_experiment
    from repro.report.resilience import (
        render_differential,
        render_resilience_report,
        resilience_summary,
    )
    from repro.resilience.chaos import (
        SCENARIOS,
        chaos_policy,
        run_differential,
    )

    if args.differential:
        rows = run_differential(days=args.days, seed=args.seed)
        print(render_differential(rows))
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(rows, fh, indent=2, sort_keys=True)
            print(f"reconciliation report -> {args.out}")
        losses = [r for r in rows
                  if r["response_rate_on"] < r["response_rate_off"]]
        return 1 if losses else 0
    if args.scenario != "none" and args.scenario not in SCENARIOS:
        print(f"error: unknown scenario {args.scenario!r} (pick one of "
              f"{', '.join(sorted(SCENARIOS))}, or 'none')",
              file=sys.stderr)
        return 2
    config = ExperimentConfig(days=args.days, seed=args.seed)
    faults = (None if args.scenario == "none"
              else SCENARIOS[args.scenario](config.horizon, args.seed))
    result = run_experiment(config, faults=faults, strict_postcollect=False,
                            collect_nbench=False,
                            resilience=chaos_policy(args.seed))
    if args.json:
        print(json.dumps(resilience_summary(result), indent=2,
                         sort_keys=True))
    else:
        print(render_resilience_report(result))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(resilience_summary(result), fh, indent=2,
                      sort_keys=True)
        print(f"resilience digest -> {args.out}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.shard.net.config import parse_endpoint

    try:
        parse_endpoint(args.endpoint)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.shard.net.worker import run_worker

    code = run_worker(args.endpoint, worker_id=args.id)
    if code == 1:
        print(f"error: could not reach a coordinator at {args.endpoint} "
              "within the connect budget", file=sys.stderr)
    elif code == 2:
        print("error: the coordinator rejected this worker's "
              "registration", file=sys.stderr)
    return code


def _cmd_live(args: argparse.Namespace) -> int:
    import json

    from repro.live.config import DEFAULT_PORT, LiveConfig, parse_rate

    if args.replay is not None and args.rate is not None:
        print("error: --replay replays a finished journal; it cannot be "
              "paced, so --rate is not accepted with it", file=sys.stderr)
        return 2
    if args.port is not None and not 0 <= args.port <= 65535:
        print(f"error: --port must be in [0, 65535], got {args.port}",
              file=sys.stderr)
        return 2
    if args.machines is not None and args.machines < 1:
        print(f"error: --machines must be at least 1, got {args.machines}",
              file=sys.stderr)
        return 2
    if args.replay is not None and args.machines is not None:
        print("error: --machines cannot be combined with --replay; the "
              "fleet is whatever the journal recorded", file=sys.stderr)
        return 2
    try:
        rate = parse_rate(args.rate) if args.rate is not None else 60.0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        return _live_replay(args)

    from repro.live.app import LiveApp

    port = DEFAULT_PORT if args.port is None else args.port
    config = LiveConfig(run_dir=args.run_dir, days=args.days, seed=args.seed,
                        machines=args.machines, rate=rate, host=args.host,
                        port=port)
    try:
        app = LiveApp(config)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    app.start()
    rate_txt = "max" if rate is None else f"{rate:g}x"
    print(f"live: serving {app.url} -- {args.days}-day run at {rate_txt}, "
          f"journal in {app.driver.journal_dir}")
    try:
        while not app.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("live: stopping (journal will be sealed)...", file=sys.stderr)
    finally:
        app.shutdown()
    if app.driver.error is not None:
        print(f"error: live run failed: {app.driver.error!r}",
              file=sys.stderr)
        return 1
    snap = app.rollups.snapshot()
    if args.rollups_out:
        with open(args.rollups_out, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"rollups -> {args.rollups_out}")
    fleet = snap["fleet"] or {}
    rr = fleet.get("response_rate")
    print(f"live: {app.driver.state} at t={app.driver.sim_now:.0f}s -- "
          f"{snap['counts']['samples']} samples"
          + (f", response rate {100 * rr:.1f}%" if rr is not None else ""))
    return 0


def _live_replay(args: argparse.Namespace) -> int:
    import json

    from repro.errors import LiveError
    from repro.live.replay import replay_rollups

    journal = pathlib.Path(args.replay)
    if not journal.is_dir():
        print(f"error: no such journal directory {args.replay!r}",
              file=sys.stderr)
        return 2
    try:
        rollups = replay_rollups(journal)
    except LiveError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    snap = rollups.snapshot()
    if args.rollups_out:
        with open(args.rollups_out, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"rollups -> {args.rollups_out}")
    fleet = snap["fleet"] or {}
    rr = fleet.get("response_rate")
    print(f"replay: {snap['counts']['samples']} samples over "
          f"{snap['iterations']['run']} iterations"
          + (f", response rate {100 * rr:.1f}%" if rr is not None else ""))
    if args.port is not None:
        from repro.live.server import LiveServer

        try:
            server = LiveServer(rollups, host=args.host, port=args.port)
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        server.start()
        print(f"replay: serving {server.url} (ctrl-C to stop)")
        try:
            import time as _time

            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "report": _cmd_report,
    "calibrate": _cmd_calibrate,
    "bench-host": _cmd_bench_host,
    "probe-local": _cmd_probe_local,
    "compare": _cmd_compare,
    "obs": _cmd_obs,
    "recovery": _cmd_recovery,
    "resilience": _cmd_resilience,
    "live": _cmd_live,
    "worker": _cmd_worker,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    raise SystemExit(main())
