"""Side-by-side comparison of the classroom fleet and its baselines.

Runs the paper's classroom environment plus the three related-work
environments through the identical DDC + analysis pipeline and tabulates
the metrics the paper uses when positioning itself: CPU idleness, uptime
ratio, availability, and the cluster-equivalence ratio.

Expected orderings (checked by tests and the comparison bench):

- idleness: classroom > corporate (Bolosky's ~15% mean usage),
- uptime: servers ~ 1.0 > corporate > unix lab >> classroom,
- Windows servers idle (~95%) > Unix servers (~85%), per Heap,
- equivalence ratio: always-on fleets approach their idleness, the
  classroom sits near 0.5 (the 2:1 rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.analysis.cpu import pairwise_cpu
from repro.analysis.equivalence import cluster_equivalence
from repro.analysis.mainresults import compute_main_results
from repro.baselines.corporate import run_corporate_baseline
from repro.baselines.servers import run_server_baseline
from repro.baselines.unixlab import run_unixlab_baseline
from repro.config import ExperimentConfig
from repro.experiment import MonitoringResult, run_experiment
from repro.report.tables import Table

__all__ = ["BaselineComparison", "compare_baselines", "summarize_run"]


@dataclass(frozen=True)
class BaselineComparison:
    """One environment's summary metrics."""

    name: str
    uptime_pct: float
    cpu_idle_pct: float
    cpu_idle_occupied_pct: float
    equivalence_ratio: float


def summarize_run(name: str, result: MonitoringResult) -> BaselineComparison:
    """Distil one monitored run into the comparison metrics."""
    trace = result.trace
    pairs = pairwise_cpu(trace)
    main = compute_main_results(trace, pairs=pairs)
    eq = cluster_equivalence(trace, pairs=pairs)
    return BaselineComparison(
        name=name,
        uptime_pct=main.both.uptime_pct,
        cpu_idle_pct=main.both.cpu_idle_pct,
        cpu_idle_occupied_pct=main.with_login.cpu_idle_pct,
        equivalence_ratio=eq.ratio_total,
    )


def _default_environments(
    seed: int, days: int
) -> Mapping[str, Callable[[], MonitoringResult]]:
    return {
        "classroom (paper)": lambda: run_experiment(
            ExperimentConfig(seed=seed, days=days)
        ),
        "corporate (Bolosky)": lambda: run_corporate_baseline(seed=seed, days=days),
        "windows servers (Heap)": lambda: run_server_baseline(
            "windows", seed=seed, days=days
        ),
        "unix servers (Heap)": lambda: run_server_baseline(
            "unix", seed=seed, days=days
        ),
        "unix lab (Arpaci)": lambda: run_unixlab_baseline(seed=seed, days=days),
    }


def compare_baselines(
    *, seed: int = 2005, days: int = 7
) -> Tuple[List[BaselineComparison], str]:
    """Run all environments and return ``(summaries, rendered table)``."""
    rows: List[BaselineComparison] = []
    for name, runner in _default_environments(seed, days).items():
        rows.append(summarize_run(name, runner()))
    table = Table(
        ["environment", "uptime %", "CPU idle %", "idle % (occupied)", "equiv ratio"]
    )
    for r in rows:
        table.add_row(
            [r.name, r.uptime_pct, r.cpu_idle_pct, r.cpu_idle_occupied_pct,
             r.equivalence_ratio]
        )
    return rows, table.render()
