"""Arpaci-style Unix student lab baseline (section 2, refs [12]-[14]).

The Unix studies the paper builds on (Berkeley NOW-era instructional
clusters, Acharya & Setia's Solaris sets) observed environments similar
in *usage* to the Windows classrooms but different in *power* behaviour:
Unix workstations stayed powered around the clock (students could not
power them off; uptime culture), so availability is dominated by
interactive occupation rather than by the power switch, with "frequent
reboots" [13] still making the population unstable.

Configuration: same class/walk-in demand as the paper's classrooms, but
no user power-offs, a weak sweep, and slightly higher background load
(Unix daemons of the era).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.config import ExperimentConfig, paper_config
from repro.experiment import MonitoringResult, run_experiment
from repro.machines.hardware import TABLE1_LABS, LabSpec, MachineSpec
from repro.sim.fleet import FleetSimulator
from repro.sim.workload import MachinePersonality, WorkloadModel

__all__ = ["unixlab_config", "unixlab_fleet", "run_unixlab_baseline"]


class UnixWorkloadModel(WorkloadModel):
    """Heavier resident daemon set than Windows 2000 desktops."""

    def personality(
        self, spec: MachineSpec, rng: np.random.Generator
    ) -> MachinePersonality:
        base = super().personality(spec, rng)
        return dataclasses.replace(
            base,
            background_busy=float(
                np.clip(base.background_busy * 3.0 + 0.004, 0.001, 0.08)
            ),
        )


def unixlab_config(seed: int = 2005, days: int = 14) -> ExperimentConfig:
    """Classroom demand, workstation (always-on) power culture."""
    base = paper_config(seed=seed, days=days)
    power = dataclasses.replace(
        base.power,
        p_off_after_use_day=0.0,
        p_off_after_use_evening=0.02,
        p_off_at_close=0.04,
        night_owl_fraction=0.85,
        # "not particularly stable, exhibiting frequent reboots" [13]
        short_cycles_per_day=1.6,
    )
    return dataclasses.replace(base, power=power)


def unixlab_fleet(
    config: ExperimentConfig, labs: Sequence[LabSpec] = TABLE1_LABS
) -> FleetSimulator:
    """Build the Unix-lab fleet simulator."""
    return FleetSimulator(
        config,
        labs=labs,
        workload_factory=lambda fs: UnixWorkloadModel(config.workload),
    )


def run_unixlab_baseline(
    seed: int = 2005, days: int = 14, labs: Sequence[LabSpec] = TABLE1_LABS
) -> MonitoringResult:
    """Monitor a Unix-style lab with the same DDC pipeline."""
    cfg = unixlab_config(seed=seed, days=days)
    return run_experiment(cfg, labs=labs, fleet_factory=unixlab_fleet)
