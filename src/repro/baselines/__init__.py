"""Baseline environments from the related work (section 2).

The paper positions its classroom measurements against three other
environment classes.  Each is reproduced as an alternate fleet
configuration so the same DDC + analysis pipeline measures all of them:

- :mod:`repro.baselines.corporate` -- Bolosky et al.'s corporate desktop
  fleet: owned machines, daytime/24-hour power patterns, mean CPU usage
  around 15% with a subset of machines pegged at 100%,
- :mod:`repro.baselines.servers` -- Heap's server taxonomy: always-on
  Windows servers (~95% idle) and Unix servers (~85% idle),
- :mod:`repro.baselines.unixlab` -- the Arpaci et al. / Acharya-Setia
  style Unix student lab: workstations that stay powered around the
  clock with interactive daytime usage,
- :mod:`repro.baselines.comparison` -- run them side by side and tabulate
  idleness, availability, and cluster-equivalence.
"""

from repro.baselines.corporate import corporate_fleet, run_corporate_baseline
from repro.baselines.servers import server_fleet, run_server_baseline
from repro.baselines.unixlab import unixlab_fleet, run_unixlab_baseline
from repro.baselines.comparison import BaselineComparison, compare_baselines

__all__ = [
    "corporate_fleet",
    "run_corporate_baseline",
    "server_fleet",
    "run_server_baseline",
    "unixlab_fleet",
    "run_unixlab_baseline",
    "BaselineComparison",
    "compare_baselines",
]
