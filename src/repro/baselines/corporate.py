"""Bolosky-style corporate desktop fleet (section 2, ref [15], [23]).

Bolosky et al. measured a large corporate Windows fleet: machines are
*owned* (one primary user, weekday office sessions), split into a
"daytime" population powered during office hours and a "24-hours"
population left running permanently (Douceur [23]: more than 60% of
corporate machines exceeded one nine of availability).  Mean CPU usage
was around 15%, inflated by a subset of machines running compute jobs at
a continuous 100%.

This module expresses that environment with the classroom substrate:

- no classes; one long owner session per weekday (log-normal around 7 h),
- low forget probability (owners lock, they don't abandon),
- most machines stay on at night (high leave-on / night-owl rates),
- a ``pegged_fraction`` of machines runs at ~100% CPU around the clock.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.config import BehaviorParams, ExperimentConfig, PowerParams, paper_config
from repro.experiment import MonitoringResult, run_experiment
from repro.machines.hardware import TABLE1_LABS, LabSpec, MachineSpec
from repro.sim.calendar import HOUR
from repro.sim.fleet import FleetSimulator
from repro.sim.power import PowerPolicy
from repro.sim.workload import MachinePersonality, WorkloadModel

__all__ = ["PEGGED_FRACTION", "corporate_config", "corporate_fleet", "run_corporate_baseline"]

#: Fraction of corporate machines running a continuous compute job
#: ("some of the machines presented a continuous 100% CPU usage").
PEGGED_FRACTION = 0.07


class CorporateWorkloadModel(WorkloadModel):
    """Workload with a pegged-CPU subpopulation.

    A ``PEGGED_FRACTION`` of machines gets a background busy fraction of
    ~1.0 -- they render, compile or crunch around the clock, which is
    what lifted Bolosky's fleet-mean CPU usage to ~15%.
    """

    def __init__(self, params, pegged_fraction: float = PEGGED_FRACTION):
        super().__init__(params)
        if not 0.0 <= pegged_fraction <= 1.0:
            raise ValueError("pegged_fraction must be a probability")
        self.pegged_fraction = pegged_fraction

    def personality(
        self, spec: MachineSpec, rng: np.random.Generator
    ) -> MachinePersonality:
        base = super().personality(spec, rng)
        if rng.random() < self.pegged_fraction:
            return dataclasses.replace(
                base, background_busy=float(rng.uniform(0.93, 1.0))
            )
        return base


class CorporatePowerPolicy(PowerPolicy):
    """No staff sweep: owners decide, and most leave machines running."""

    def off_at_close(self, traits, rng, *, forgotten_session=False):
        # Corporate buildings have no 04:00 lights-out sweep; only the
        # residual per-user policy applies.
        del forgotten_session
        return bool(rng.random() < self.params.p_off_at_close * (1.0 - traits.leave_on_bias))


def corporate_config(seed: int = 2005, days: int = 77) -> ExperimentConfig:
    """An :class:`ExperimentConfig` tuned to the corporate environment."""
    base = paper_config(seed=seed, days=days)
    behavior = dataclasses.replace(
        base.behavior,
        class_density=0.0,          # no classes in an office
        saturday_density=0.0,
        walkin_mean_gap=9.0 * HOUR,  # the owner shows up essentially daily
        session_median=6.5 * HOUR,
        session_sigma=0.35,
        session_max=11.0 * HOUR,
        p_forget=0.03,
        weekday_demand=(1.0, 1.0, 1.0, 1.0, 1.0, 0.1, 0.0),
    )
    power = dataclasses.replace(
        base.power,
        p_off_after_use_day=0.04,
        p_off_after_use_evening=0.30,
        p_off_at_close=0.10,        # interpreted per-night residual off rate
        night_owl_fraction=0.62,    # Douceur: >60% above one nine
        short_cycles_per_day=0.15,
    )
    return dataclasses.replace(base, behavior=behavior, power=power)


def corporate_fleet(
    config: ExperimentConfig, labs: Sequence[LabSpec] = TABLE1_LABS
) -> FleetSimulator:
    """Build the corporate fleet simulator (plugs into ``run_experiment``)."""
    return FleetSimulator(
        config,
        labs=labs,
        power_factory=lambda fs: CorporatePowerPolicy(config.power, fs.calendar),
        workload_factory=lambda fs: CorporateWorkloadModel(config.workload),
    )


def run_corporate_baseline(
    seed: int = 2005, days: int = 14, labs: Sequence[LabSpec] = TABLE1_LABS
) -> MonitoringResult:
    """Monitor a corporate fleet with the same DDC pipeline."""
    cfg = corporate_config(seed=seed, days=days)
    return run_experiment(cfg, labs=labs, fleet_factory=corporate_fleet)
