"""Heap's server taxonomy baseline (section 2, ref [17]).

Heap's IBM white paper measured *servers* with the same 15-minute
periodic collection the paper uses: Windows servers averaged ~95% CPU
idleness, Unix servers ~85%.  Servers differ from desktops in every
behavioural dimension: they are always on, nobody logs in interactively,
and their load is service traffic rather than keyboards.

The server fleet reuses the substrate with:

- no interactive usage at all,
- machines powered on at experiment start and (almost) never off --
  a small reboot rate models patch days,
- a service-load personality with the target mean busy fraction and a
  diurnal modulation (request traffic follows office hours too).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.config import ExperimentConfig, paper_config
from repro.experiment import MonitoringResult, run_experiment
from repro.machines.hardware import TABLE1_LABS, LabSpec, MachineSpec
from repro.sim.behavior import BehaviorModel
from repro.sim.calendar import HOUR
from repro.sim.fleet import FleetSimulator
from repro.sim.power import PowerPolicy
from repro.sim.workload import MachinePersonality, WorkloadModel

__all__ = [
    "WINDOWS_SERVER_BUSY",
    "UNIX_SERVER_BUSY",
    "server_config",
    "server_fleet",
    "run_server_baseline",
]

#: Mean CPU busy fraction of Heap's Windows servers (95% idle).
WINDOWS_SERVER_BUSY = 0.05
#: Mean CPU busy fraction of Heap's Unix servers (85% idle).
UNIX_SERVER_BUSY = 0.15


class ServerBehaviorModel(BehaviorModel):
    """Nobody sits at a server: the usage plan is always empty."""

    def plan_day(self, spec, day, rng, popularity=1.0):
        del spec, day, rng, popularity
        return []


class ServerPowerPolicy(PowerPolicy):
    """Servers never get swept; rare scheduled reboots only."""

    def off_at_close(self, traits, rng, *, forgotten_session=False):
        del traits, forgotten_session
        return bool(rng.random() < 0.002)  # the odd maintenance night

    def plan_short_cycles(self, day, rng):
        # Patch-day reboots: quick down-up cycles, ~weekly.
        if rng.random() > self.params.short_cycles_per_day:
            return []
        clock = self.calendar.clock
        start = clock.at(day, 3.0) + float(rng.uniform(0, HOUR))
        return [(start, float(rng.uniform(120.0, 420.0)))]


class ServerWorkloadModel(WorkloadModel):
    """Service load instead of interactive load."""

    def __init__(self, params, busy_mean: float):
        super().__init__(params)
        if not 0.0 < busy_mean < 1.0:
            raise ValueError("busy_mean must be in (0, 1)")
        self.busy_mean = busy_mean

    def personality(
        self, spec: MachineSpec, rng: np.random.Generator
    ) -> MachinePersonality:
        base = super().personality(spec, rng)
        busy = float(np.clip(rng.normal(self.busy_mean, self.busy_mean * 0.4),
                             0.005, 0.9))
        return dataclasses.replace(base, background_busy=busy)


class ServerFleetSimulator(FleetSimulator):
    """Fleet whose machines are booted at t=0 and stay up."""

    def start(self) -> None:
        if self._started:
            return
        super().start()
        for agent in self.agents:
            if not agent.machine.powered:
                agent._boot(self.sim.now)  # noqa: SLF001 - deliberate bring-up


def server_config(seed: int = 2005, days: int = 14) -> ExperimentConfig:
    """Configuration shared by both server flavours."""
    base = paper_config(seed=seed, days=days)
    power = dataclasses.replace(
        base.power,
        p_off_after_use_day=0.0,
        p_off_after_use_evening=0.0,
        p_off_at_close=0.0,
        night_owl_fraction=1.0,
        short_cycles_per_day=1.0 / 7.0,  # weekly patch reboot probability
    )
    return dataclasses.replace(base, power=power)


def server_fleet(
    config: ExperimentConfig,
    labs: Sequence[LabSpec] = TABLE1_LABS,
    *,
    busy_mean: float = WINDOWS_SERVER_BUSY,
) -> ServerFleetSimulator:
    """Build an always-on server fleet with the given mean busy level."""
    return ServerFleetSimulator(
        config,
        labs=labs,
        behavior_factory=lambda fs: ServerBehaviorModel(config.behavior, fs.calendar),
        power_factory=lambda fs: ServerPowerPolicy(config.power, fs.calendar),
        workload_factory=lambda fs: ServerWorkloadModel(config.workload, busy_mean),
    )


def run_server_baseline(
    kind: str = "windows",
    *,
    seed: int = 2005,
    days: int = 14,
    labs: Sequence[LabSpec] = TABLE1_LABS,
) -> MonitoringResult:
    """Monitor a server fleet; ``kind`` is ``"windows"`` or ``"unix"``."""
    busy = {"windows": WINDOWS_SERVER_BUSY, "unix": UNIX_SERVER_BUSY}.get(kind)
    if busy is None:
        raise ValueError(f"unknown server kind {kind!r}")
    cfg = server_config(seed=seed, days=days)
    return run_experiment(
        cfg,
        labs=labs,
        fleet_factory=lambda c, lb: server_fleet(c, lb, busy_mean=busy),
    )
