"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError``, ``ValueError`` raised by argument
validation) propagate unchanged where that is more idiomatic.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleError",
    "MachineStateError",
    "ProbeError",
    "RemoteExecError",
    "RemoteTimeout",
    "AccessDenied",
    "MachineUnreachable",
    "TraceError",
    "TraceFormatError",
    "TraceCorruptionError",
    "AnalysisError",
    "CalibrationError",
    "HarvestError",
    "ObservabilityError",
    "MetricError",
    "SpanError",
    "SnapshotFormatError",
    "RecoveryError",
    "JournalError",
    "CheckpointError",
    "ResumeDivergence",
    "InjectedCrash",
    "ShardWorkerError",
    "CampaignStopped",
    "NetworkError",
    "ChannelClosed",
    "ChannelTimeout",
    "FrameCorruption",
    "LiveError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation was violated."""


class ScheduleError(SimulationError):
    """An event was scheduled in the past or with an invalid timestamp."""


class MachineStateError(SimulationError):
    """An operation was attempted on a machine in an incompatible state.

    Examples: logging a user into a powered-off machine, shutting down a
    machine that is already off, or querying boot-relative counters of a
    machine that has never been booted.
    """


class ProbeError(ReproError):
    """A probe failed to produce parseable output."""


class RemoteExecError(ReproError):
    """Base class for remote-execution (psexec-like) failures."""


class RemoteTimeout(RemoteExecError):
    """The remote machine did not answer within the configured timeout.

    This is the normal outcome of probing a powered-off machine and is the
    mechanism behind the paper's 50.2% sample response rate.
    """


class AccessDenied(RemoteExecError):
    """Credentials were rejected by the remote machine.

    ``transient`` separates storm-style flaky rejections (the DC or the
    machine's LSA hiccuped; a retry may succeed) from deterministic
    credential mismatches, where retrying burns iteration budget on a
    certain failure.  The coordinator only retries transient denials.
    """

    def __init__(self, message: str = "", *, transient: bool = False):
        super().__init__(message)
        self.transient = transient


class MachineUnreachable(RemoteExecError):
    """The remote machine is not reachable on the network (powered off)."""


class TraceError(ReproError):
    """A trace store or trace file could not be read or written."""


class TraceFormatError(TraceError):
    """A serialized trace record does not conform to the schema."""


class TraceCorruptionError(TraceFormatError):
    """A trace record is structurally readable but its *content* is bad.

    Distinguishes damaged data (torn writes, bit rot, truncated rows)
    from schema mismatches so the recovery layer can quarantine corrupt
    input instead of treating it as a programming error.
    """


class AnalysisError(ReproError):
    """An analysis was run on data that cannot support it."""


class CalibrationError(ReproError):
    """A calibration target is malformed or cannot be evaluated."""


class HarvestError(ReproError):
    """The idle-cycle harvesting simulator hit an invalid state."""


class ObservabilityError(ReproError):
    """Base class for errors raised by the :mod:`repro.obs` layer."""


class MetricError(ObservabilityError):
    """A metric was registered or used inconsistently.

    Examples: re-registering ``(name, labels)`` as a different metric
    type, or two histograms sharing a name with different buckets.
    """


class SpanError(ObservabilityError):
    """Span nesting was violated (exited out of order or never entered)."""


class SnapshotFormatError(ObservabilityError):
    """A serialized observability snapshot does not conform to the schema."""


class RecoveryError(ReproError):
    """Base class for errors raised by the :mod:`repro.recovery` layer."""


class JournalError(RecoveryError):
    """The trace journal could not be written or is inconsistent.

    Unrecoverable *read*-side damage is not raised as this: corrupt or
    torn segments are quarantined and reported, never fatal.
    """


class CheckpointError(RecoveryError):
    """A checkpoint could not be written, or resume preconditions failed.

    Examples: resuming with a configuration whose digest differs from
    the checkpointed run's, or a run directory that already belongs to
    another experiment.
    """


class ResumeDivergence(RecoveryError):
    """A resumed run regenerated samples that differ from the journal.

    The simulation is deterministic, so this only happens when the code
    or configuration changed between the crash and the resume -- exactly
    the situation where silently mixing the two traces would poison the
    analysis.
    """


class InjectedCrash(ReproError):
    """A deliberate, test-injected process crash (see ``repro.recovery``).

    Raised by the crash-injection harness at a configured kill point to
    emulate the coordinator process dying; never raised in production
    runs.
    """


class ShardWorkerError(ReproError):
    """A shard worker process died and could not be brought back.

    Replaces the executor's opaque ``BrokenProcessPool`` with the
    identity of the failed shard: which shard it was, the last heartbeat
    the supervisor saw (``None`` on the unsupervised pool path, which
    has no heartbeat channel), the last iteration the worker reported
    complete, and how many supervised restarts were burned before
    giving up.
    """

    def __init__(
        self,
        message: str = "",
        *,
        shard_index: int | None = None,
        last_heartbeat: float | None = None,
        last_iteration: int | None = None,
        restarts: int = 0,
    ):
        super().__init__(message)
        self.shard_index = shard_index
        self.last_heartbeat = last_heartbeat
        self.last_iteration = last_iteration
        self.restarts = restarts


class CampaignStopped(ReproError):
    """A supervised shard campaign was stopped by a steering command.

    Raised by the supervisor after every worker has acknowledged STOP at
    an iteration boundary.  With recovery enabled the campaign's run
    directory is durable and ``resume_from=`` continues it; without
    recovery the partial results are discarded.
    """

    def __init__(
        self,
        message: str = "",
        *,
        run_dir=None,
        last_iterations: dict | None = None,
    ):
        super().__init__(message)
        self.run_dir = run_dir
        self.last_iterations = dict(last_iterations or {})


class NetworkError(ReproError):
    """Base class for errors in the networked shard control plane.

    Raised by the :mod:`repro.shard.net` framing and protocol layers.
    These are *expected* failures -- sockets fail in ways pipes cannot
    -- so the coordinator and workers catch them and recover (reconnect,
    lease reassignment, degraded merge) rather than letting them escape
    a campaign.
    """


class ChannelClosed(NetworkError):
    """The peer hung up, the connection was torn, or a write failed.

    Covers EOF on read, ``EPIPE``/``ECONNRESET`` on write, and injected
    connection drops from the network fault family.
    """


class ChannelTimeout(NetworkError):
    """A framed read or write did not complete within its deadline.

    The channel buffers partial frames across timeouts, so a timed-out
    read leaves the stream in sync and can simply be retried.
    """


class FrameCorruption(NetworkError):
    """A received frame failed its CRC or could not be decoded.

    After corruption the byte stream cannot be trusted to be in frame
    sync, so the consumer must close and re-establish the channel.
    """


class LiveError(ReproError):
    """An error in the :mod:`repro.live` streaming subsystem.

    Covers driver lifecycle violations (starting a driver twice,
    querying rollups of a journal with no iterations) and replay
    inputs that are not journals.  Network-level failures (e.g. the
    listen port already bound) surface as :class:`OSError` from the
    stdlib server, not as :class:`LiveError`.
    """
