"""End-to-end monitoring experiment runner.

Ties the substrate together the way the authors ran theirs: a
:class:`~repro.sim.fleet.FleetSimulator` hosting the classrooms, a
:class:`~repro.ddc.coordinator.DdcCoordinator` probing them with
:class:`~repro.ddc.w32probe.W32Probe` every 15 minutes, and an NBench
pass to collect the per-machine performance indexes.

>>> from repro.experiment import run_experiment
>>> from repro.config import ExperimentConfig
>>> result = run_experiment(ExperimentConfig(days=2, seed=1))
>>> result.store is not None
True

A paper-scale run is ``run_experiment(paper_config())`` -- 77 days, 169
machines, ~580k samples, a few tens of seconds of wall time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

from repro.config import ExperimentConfig, paper_config
from repro.ddc.coordinator import DdcCoordinator
from repro.faults.plan import FAULT_CATEGORIES, FaultPlan
from repro.obs.observer import Observer, maybe_phase
from repro.ddc.nbenchprobe import NBenchProbe, parse_nbench_output
from repro.ddc.postcollect import SamplePostCollector
from repro.ddc.w32probe import W32Probe
from repro.machines.hardware import TABLE1_LABS, LabSpec
from repro.machines.winapi import Win32Api
from repro.sim.fleet import FleetSimulator
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import StaticInfo, TraceMeta
from repro.traces.store import TraceStore

__all__ = ["MonitoringResult", "run_experiment", "run_paper_experiment"]


@dataclass
class MonitoringResult:
    """Everything a finished monitoring experiment produced.

    Attributes
    ----------
    config:
        The configuration the run used.
    fleet:
        The fleet simulator (holds ground-truth machine logs).
    coordinator:
        The DDC coordinator (attempt/timeout accounting).
    store:
        The collected trace.
    faults:
        The fault plan the run used (``None`` for a fault-free run).
    observer:
        The observer the run was instrumented with (``None`` when
        uninstrumented); export it with ``observer.snapshot()``.
    """

    config: ExperimentConfig
    fleet: FleetSimulator
    coordinator: DdcCoordinator
    store: TraceStore
    faults: Optional[FaultPlan] = None
    observer: Optional[Observer] = None

    @cached_property
    def trace(self) -> ColumnarTrace:
        """Columnar view of the trace (built lazily, cached)."""
        with maybe_phase(self.observer, "columnarise"):
            return ColumnarTrace(self.store)

    @property
    def meta(self) -> TraceMeta:
        """The trace's experiment metadata."""
        assert self.store.meta is not None
        return self.store.meta


def run_experiment(
    config: Optional[ExperimentConfig] = None,
    *,
    labs: Sequence[LabSpec] = TABLE1_LABS,
    collect_nbench: bool = True,
    strict_postcollect: bool = True,
    fleet_factory=None,
    faults: Optional[FaultPlan] = None,
    observer: Optional[Observer] = None,
) -> MonitoringResult:
    """Run a full monitoring experiment and return its artefacts.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the calibrated paper setup.
    labs:
        Lab catalog (Table 1 by default).
    collect_nbench:
        Whether to run the NBench probe per machine and attach the
        indexes to the trace's static info (needed by Fig. 6).
    strict_postcollect:
        Propagate probe parse errors instead of dropping bad reports.
    fleet_factory:
        ``callable(config, labs) -> FleetSimulator`` override; the
        baseline fleets (corporate, servers, Unix lab) plug in here.
    faults:
        Fault-injection plan wired through the coordinator and executor
        (see :mod:`repro.faults`).  Pair non-trivial plans containing
        :class:`~repro.faults.scenarios.StdoutCorruption` with
        ``strict_postcollect=False`` so garbled reports are dropped, not
        raised.
    observer:
        :class:`repro.obs.Observer` threaded into every layer (engine,
        coordinator, executor, agents).  Wall-clock phase timings land in
        ``experiment.phase_seconds`` gauges; with a fault plan attached,
        the plan's injection ledger is copied into ``faults.injected``
        counters so an exported snapshot is self-contained.  ``None`` or
        a :class:`~repro.obs.NullObserver` reproduces pre-observability
        output byte for byte.
    """
    cfg = config or paper_config()
    obs = observer if observer is not None and observer.enabled else None
    with maybe_phase(obs, "build"):
        if fleet_factory is None:
            fleet = FleetSimulator(cfg, labs=labs, observer=observer)
        else:
            fleet = fleet_factory(cfg, labs)
            if obs is not None:
                # Custom fleets don't instrument their engine, but spans
                # (and the coordinator) still run on its clock.
                obs.bind_clock(fleet.sim)
        meta = TraceMeta(
            n_machines=len(fleet.machines),
            sample_period=cfg.ddc.sample_period,
            horizon=cfg.horizon,
        )
        store = TraceStore(meta)
        post = SamplePostCollector(store, strict=strict_postcollect)
        coordinator = DdcCoordinator(
            fleet.machines,
            fleet.sim,
            cfg.ddc,
            W32Probe(),
            post,
            fleet.streams.stream("ddc"),
            horizon=cfg.horizon,
            faults=faults,
            observer=observer,
        )
    with maybe_phase(obs, "simulate"):
        fleet.start()
        coordinator.start()
        fleet.sim.run_until(cfg.horizon)
    coordinator.finalize_meta(meta)
    if collect_nbench:
        with maybe_phase(obs, "collect"):
            _attach_nbench_indexes(fleet, meta)
    if obs is not None and faults is not None and not faults.empty:
        for category in FAULT_CATEGORIES:
            obs.metrics.counter("faults.injected", category=category).inc(
                faults.injected.get(category, 0)
            )
    return MonitoringResult(config=cfg, fleet=fleet, coordinator=coordinator,
                            store=store, faults=faults, observer=observer)


def _attach_nbench_indexes(fleet: FleetSimulator, meta: TraceMeta) -> None:
    """Benchmark every machine once and record the indexes in the statics.

    The authors collected the indexes in a dedicated NBench-probe pass
    (section 4.1); availability over 77 days guarantees each machine was
    eventually benchmarked, so we benchmark the full roster.
    """
    probe = NBenchProbe(fleet.streams.stream("nbench"))
    for machine in fleet.machines:
        result = probe.run(Win32Api(machine), fleet.sim.now)
        report = parse_nbench_output(result.stdout)
        spec = machine.spec
        static = meta.statics.get(spec.machine_id)
        if static is None:
            # Machine never produced a W32Probe sample (off all along);
            # synthesise its static record from the spec so Fig. 6 can
            # still normalise over the full roster.
            static = StaticInfo(
                machine_id=spec.machine_id,
                hostname=spec.hostname,
                lab=spec.lab,
                cpu_name=spec.cpu.model,
                cpu_mhz=spec.cpu.mhz,
                os_name=spec.os_name,
                ram_mb=spec.ram_mb,
                swap_mb=spec.swap_mb,
                disk_serial=spec.disk_serial,
                disk_total_b=spec.disk_bytes,
                mac=spec.mac,
            )
        meta.statics[spec.machine_id] = dataclasses.replace(
            static, nbench_int=report["int"], nbench_fp=report["fp"]
        )


def run_paper_experiment(seed: int = 2005) -> MonitoringResult:
    """The paper's 77-day, 169-machine experiment with default calibration."""
    return run_experiment(paper_config(seed=seed))
