"""End-to-end monitoring experiment runner.

Ties the substrate together the way the authors ran theirs: a
:class:`~repro.sim.fleet.FleetSimulator` hosting the classrooms, a
:class:`~repro.ddc.coordinator.DdcCoordinator` probing them with
:class:`~repro.ddc.w32probe.W32Probe` every 15 minutes, and an NBench
pass to collect the per-machine performance indexes.

>>> from repro.experiment import run_experiment
>>> from repro.config import ExperimentConfig
>>> result = run_experiment(ExperimentConfig(days=2, seed=1))
>>> result.store is not None
True

A paper-scale run is ``run_experiment(paper_config())`` -- 77 days, 169
machines, ~580k samples, a few tens of seconds of wall time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config import ExperimentConfig, paper_config
from repro.ddc.coordinator import DdcCoordinator
from repro.errors import CheckpointError
from repro.faults.plan import FAULT_CATEGORIES, FaultPlan
from repro.obs.observer import Observer, maybe_phase
from repro.ddc.nbenchprobe import NBenchProbe, parse_nbench_output
from repro.ddc.postcollect import SamplePostCollector
from repro.ddc.w32probe import W32Probe
from repro.machines.hardware import TABLE1_LABS, LabSpec
from repro.machines.winapi import Win32Api
from repro.recovery.runtime import RecoveryConfig, RecoveryInfo, RecoveryRuntime
from repro.resilience.policy import ResiliencePolicy
from repro.sim.fleet import FleetSimulator
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import StaticInfo, TraceMeta
from repro.traces.store import TraceStore

__all__ = ["MonitoringResult", "run_experiment", "run_paper_experiment"]


@dataclass
class MonitoringResult:
    """Everything a finished monitoring experiment produced.

    Attributes
    ----------
    config:
        The configuration the run used.
    fleet:
        The fleet simulator (holds ground-truth machine logs).
    coordinator:
        The DDC coordinator (attempt/timeout accounting).
    store:
        The collected trace.
    faults:
        The fault plan the run used (``None`` for a fault-free run).
    observer:
        The observer the run was instrumented with (``None`` when
        uninstrumented); export it with ``observer.snapshot()``.
    recovery:
        Summary of what the crash-safe persistence layer did (``None``
        for a run without recovery plumbing): checkpoints written,
        journal segments sealed, replay verification counts and any
        quarantine ledger entries.
    """

    config: ExperimentConfig
    fleet: FleetSimulator
    coordinator: DdcCoordinator
    store: TraceStore
    faults: Optional[FaultPlan] = None
    observer: Optional[Observer] = None
    recovery: Optional[RecoveryInfo] = None

    @cached_property
    def trace(self) -> ColumnarTrace:
        """Columnar view of the trace (built lazily, cached)."""
        with maybe_phase(self.observer, "columnarise"):
            return ColumnarTrace(self.store)

    @property
    def meta(self) -> TraceMeta:
        """The trace's experiment metadata."""
        assert self.store.meta is not None
        return self.store.meta


def run_experiment(
    config: Optional[ExperimentConfig] = None,
    *,
    labs: Sequence[LabSpec] = TABLE1_LABS,
    collect_nbench: bool = True,
    strict_postcollect: bool = True,
    fleet_factory=None,
    faults: Optional[FaultPlan] = None,
    observer: Optional[Observer] = None,
    recovery: Optional[RecoveryConfig] = None,
    resume_from: Optional[Union[str, Path, RecoveryConfig]] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> MonitoringResult:
    """Run a full monitoring experiment and return its artefacts.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the calibrated paper setup.
    labs:
        Lab catalog (Table 1 by default).
    collect_nbench:
        Whether to run the NBench probe per machine and attach the
        indexes to the trace's static info (needed by Fig. 6).
    strict_postcollect:
        Propagate probe parse errors instead of dropping bad reports.
    fleet_factory:
        ``callable(config, labs) -> FleetSimulator`` override; the
        baseline fleets (corporate, servers, Unix lab) plug in here.
    faults:
        Fault-injection plan wired through the coordinator and executor
        (see :mod:`repro.faults`).  Pair non-trivial plans containing
        :class:`~repro.faults.scenarios.StdoutCorruption` with
        ``strict_postcollect=False`` so garbled reports are dropped, not
        raised.
    observer:
        :class:`repro.obs.Observer` threaded into every layer (engine,
        coordinator, executor, agents).  Wall-clock phase timings land in
        ``experiment.phase_seconds`` gauges; with a fault plan attached,
        the plan's injection ledger is copied into ``faults.injected``
        counters so an exported snapshot is self-contained.  ``None`` or
        a :class:`~repro.obs.NullObserver` reproduces pre-observability
        output byte for byte.
    recovery:
        :class:`repro.recovery.RecoveryConfig` enabling the crash-safe
        persistence layer: every sample is write-ahead journaled and the
        full simulation state checkpointed every N iterations into
        ``recovery.run_dir``.  Like ``faults`` and ``observer``, ``None``
        leaves the hot path hook-free and the output bitwise-identical.
    resume_from:
        Run directory (or :class:`~repro.recovery.RecoveryConfig`) of a
        crashed recovery-enabled run.  The latest valid checkpoint is
        loaded, the journal tail is CRC-verified (corrupt or torn
        segments are quarantined, not crashed on) and the simulation
        continues to the horizon; the regenerated iterations are checked
        against the journaled digests.  Mutually exclusive with
        ``recovery``; per-run arguments (``labs``, ``faults``,
        ``fleet_factory``, ``observer``) come from the checkpoint, and a
        ``config`` passed here must digest-match the checkpointed one.
    resilience:
        Convenience for attaching a
        :class:`~repro.resilience.ResiliencePolicy` without rebuilding
        the config: replaces ``config.ddc.resilience`` before the run.
        ``None`` (default) engages nothing -- traces stay bit-identical
        to pre-resilience builds.  Not accepted together with
        ``resume_from``: a resumed run's policy (and live control-plane
        state) comes from the checkpoint.
    """
    if resume_from is not None:
        if recovery is not None:
            raise CheckpointError(
                "pass either recovery= (fresh run) or resume_from= "
                "(continue a crashed run), not both"
            )
        if resilience is not None:
            raise CheckpointError(
                "resilience= cannot be changed on resume; the policy and "
                "its control-plane state come from the checkpoint"
            )
        return _resume_experiment(
            resume_from,
            config,
            labs=labs,
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory,
            faults=faults,
            observer=observer,
        )
    cfg = config or paper_config()
    if resilience is not None:
        cfg = cfg.replace(
            ddc=dataclasses.replace(cfg.ddc, resilience=resilience)
        )
    obs = observer if observer is not None and observer.enabled else None
    with maybe_phase(obs, "build"):
        if fleet_factory is None:
            fleet = FleetSimulator(cfg, labs=labs, observer=observer)
        else:
            fleet = fleet_factory(cfg, labs)
            if obs is not None:
                # Custom fleets don't instrument their engine, but spans
                # (and the coordinator) still run on its clock.
                obs.bind_clock(fleet.sim)
        meta = TraceMeta(
            n_machines=len(fleet.machines),
            sample_period=cfg.ddc.sample_period,
            horizon=cfg.horizon,
        )
        store = TraceStore(meta)
        post = SamplePostCollector(store, strict=strict_postcollect)
        coordinator = DdcCoordinator(
            fleet.machines,
            fleet.sim,
            cfg.ddc,
            W32Probe(),
            post,
            fleet.streams.stream("ddc"),
            horizon=cfg.horizon,
            faults=faults,
            observer=observer,
        )
        runtime = None
        if recovery is not None:
            runtime = _fresh_runtime(recovery)
            runtime.bind(fleet=fleet, coordinator=coordinator, store=store,
                         config=cfg, faults=faults, observer=observer)
    with maybe_phase(obs, "simulate"):
        fleet.start()
        coordinator.start()
        try:
            fleet.sim.run_until(cfg.horizon)
        except BaseException:
            if runtime is not None:
                # Emulates the process dying: handles drop, no seal.
                runtime.hard_stop()
            raise
    return _finish_experiment(cfg, fleet, coordinator, store, meta,
                              faults=faults, observer=observer, obs=obs,
                              collect_nbench=collect_nbench, runtime=runtime)


def _fresh_runtime(recovery: RecoveryConfig) -> RecoveryRuntime:
    """Recovery runtime for a brand-new run; refuses a used run dir."""
    if (any(recovery.journal_dir.glob("segment-*.jsonl"))
            or any(recovery.checkpoint_dir.glob("ckpt-*.ckpt"))):
        raise CheckpointError(
            f"{recovery.run_dir} already holds a run's journal or "
            "checkpoints; pass resume_from= to continue it, or choose a "
            "fresh directory"
        )
    return RecoveryRuntime(recovery)


def _finish_experiment(
    cfg: ExperimentConfig,
    fleet: FleetSimulator,
    coordinator: DdcCoordinator,
    store: TraceStore,
    meta: TraceMeta,
    *,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    obs: Optional[Observer],
    collect_nbench: bool,
    runtime: Optional[RecoveryRuntime],
) -> MonitoringResult:
    """Post-simulation stages shared by fresh and resumed runs."""
    coordinator.finalize_meta(meta)
    if collect_nbench:
        with maybe_phase(obs, "collect"):
            _attach_nbench_indexes(fleet, meta)
    if obs is not None and faults is not None and not faults.empty:
        for category in FAULT_CATEGORIES:
            obs.metrics.counter("faults.injected", category=category).inc(
                faults.injected.get(category, 0)
            )
    info = runtime.finish() if runtime is not None else None
    return MonitoringResult(config=cfg, fleet=fleet, coordinator=coordinator,
                            store=store, faults=faults, observer=observer,
                            recovery=info)


def _resume_experiment(
    resume_from: Union[str, Path, RecoveryConfig],
    config: Optional[ExperimentConfig],
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
) -> MonitoringResult:
    """Continue a crashed recovery-enabled run from its run directory."""
    from repro.recovery.checkpoint import config_digest, load_latest_checkpoint
    from repro.recovery.journal import Quarantine, retro_seal, scan_journal

    rcfg = (resume_from if isinstance(resume_from, RecoveryConfig)
            else RecoveryConfig(run_dir=resume_from))
    quarantine = Quarantine(rcfg.run_dir)
    ckpt = load_latest_checkpoint(rcfg.checkpoint_dir, quarantine)
    scan = scan_journal(rcfg.journal_dir, quarantine)
    retro_seal(scan)
    if ckpt is None:
        # Crash before the first checkpoint survived: cold-restart from
        # iteration 0.  The journal tail then covers the whole crashed
        # generation, so every regenerated iteration is still verified.
        runtime = RecoveryRuntime(
            rcfg,
            quarantine=quarantine,
            expected_digests=scan.iteration_digests,
            cold_restart=True,
            start_segment=scan.next_segment,
        )
        cfg = config or paper_config()
        return _run_fresh_graph(
            cfg, labs=labs, collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory, faults=faults,
            observer=observer, runtime=runtime,
        )
    if config is not None and config_digest(config) != ckpt.config:
        raise CheckpointError(
            f"configuration mismatch: resume was given a config whose "
            f"digest {config_digest(config)[:12]}... differs from the "
            f"checkpointed run's {ckpt.config[:12]}...; resuming it would "
            "silently diverge"
        )
    state = ckpt.state
    cfg: ExperimentConfig = state["config"]
    fleet: FleetSimulator = state["fleet"]
    coordinator: DdcCoordinator = state["coordinator"]
    store: TraceStore = state["store"]
    ckpt_faults: Optional[FaultPlan] = state["faults"]
    ckpt_observer: Optional[Observer] = state["observer"]
    obs = (ckpt_observer if ckpt_observer is not None
           and ckpt_observer.enabled else None)
    expected = {k: v for k, v in scan.iteration_digests.items()
                if k > ckpt.iteration}
    runtime = RecoveryRuntime(
        rcfg,
        quarantine=quarantine,
        expected_digests=expected,
        resumed_from=ckpt.iteration,
        start_segment=scan.next_segment,
    )
    runtime.bind(fleet=fleet, coordinator=coordinator, store=store,
                 config=cfg, faults=ckpt_faults, observer=ckpt_observer)
    with maybe_phase(obs, "simulate"):
        try:
            fleet.sim.run_until(cfg.horizon)
        except BaseException:
            runtime.hard_stop()
            raise
    assert store.meta is not None
    return _finish_experiment(cfg, fleet, coordinator, store, store.meta,
                              faults=ckpt_faults, observer=ckpt_observer,
                              obs=obs, collect_nbench=collect_nbench,
                              runtime=runtime)


def _run_fresh_graph(
    cfg: ExperimentConfig,
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    runtime: RecoveryRuntime,
) -> MonitoringResult:
    """Build and run a fresh graph under an existing recovery runtime.

    Used by the cold-restart resume path, where the runtime carries the
    crashed generation's iteration digests for replay verification.
    """
    obs = observer if observer is not None and observer.enabled else None
    with maybe_phase(obs, "build"):
        if fleet_factory is None:
            fleet = FleetSimulator(cfg, labs=labs, observer=observer)
        else:
            fleet = fleet_factory(cfg, labs)
            if obs is not None:
                obs.bind_clock(fleet.sim)
        meta = TraceMeta(
            n_machines=len(fleet.machines),
            sample_period=cfg.ddc.sample_period,
            horizon=cfg.horizon,
        )
        store = TraceStore(meta)
        post = SamplePostCollector(store, strict=strict_postcollect)
        coordinator = DdcCoordinator(
            fleet.machines, fleet.sim, cfg.ddc, W32Probe(), post,
            fleet.streams.stream("ddc"), horizon=cfg.horizon,
            faults=faults, observer=observer,
        )
        runtime.bind(fleet=fleet, coordinator=coordinator, store=store,
                     config=cfg, faults=faults, observer=observer)
    with maybe_phase(obs, "simulate"):
        fleet.start()
        coordinator.start()
        try:
            fleet.sim.run_until(cfg.horizon)
        except BaseException:
            runtime.hard_stop()
            raise
    return _finish_experiment(cfg, fleet, coordinator, store, meta,
                              faults=faults, observer=observer, obs=obs,
                              collect_nbench=collect_nbench, runtime=runtime)


def _attach_nbench_indexes(fleet: FleetSimulator, meta: TraceMeta) -> None:
    """Benchmark every machine once and record the indexes in the statics.

    The authors collected the indexes in a dedicated NBench-probe pass
    (section 4.1); availability over 77 days guarantees each machine was
    eventually benchmarked, so we benchmark the full roster.
    """
    probe = NBenchProbe(fleet.streams.stream("nbench"))
    for machine in fleet.machines:
        result = probe.run(Win32Api(machine), fleet.sim.now)
        report = parse_nbench_output(result.stdout)
        spec = machine.spec
        static = meta.statics.get(spec.machine_id)
        if static is None:
            # Machine never produced a W32Probe sample (off all along);
            # synthesise its static record from the spec so Fig. 6 can
            # still normalise over the full roster.
            static = StaticInfo(
                machine_id=spec.machine_id,
                hostname=spec.hostname,
                lab=spec.lab,
                cpu_name=spec.cpu.model,
                cpu_mhz=spec.cpu.mhz,
                os_name=spec.os_name,
                ram_mb=spec.ram_mb,
                swap_mb=spec.swap_mb,
                disk_serial=spec.disk_serial,
                disk_total_b=spec.disk_bytes,
                mac=spec.mac,
            )
        meta.statics[spec.machine_id] = dataclasses.replace(
            static, nbench_int=report["int"], nbench_fp=report["fp"]
        )


def run_paper_experiment(seed: int = 2005) -> MonitoringResult:
    """The paper's 77-day, 169-machine experiment with default calibration."""
    return run_experiment(paper_config(seed=seed))
