"""End-to-end monitoring experiment runner.

Ties the substrate together the way the authors ran theirs: a
:class:`~repro.sim.fleet.FleetSimulator` hosting the classrooms, a
:class:`~repro.ddc.coordinator.DdcCoordinator` probing them with
:class:`~repro.ddc.w32probe.W32Probe` every 15 minutes, and an NBench
pass to collect the per-machine performance indexes.

>>> from repro.experiment import run_experiment
>>> from repro.config import ExperimentConfig
>>> result = run_experiment(ExperimentConfig(days=2, seed=1))
>>> result.store is not None
True

A paper-scale run is ``run_experiment(paper_config())`` -- 77 days, 169
machines, ~580k samples, a few tens of seconds of wall time.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config import ExperimentConfig, paper_config
from repro.ddc.coordinator import DdcCoordinator
from repro.errors import CheckpointError, ShardWorkerError
from repro.faults.plan import FAULT_CATEGORIES, FaultPlan
from repro.obs.observer import Observer, maybe_phase
from repro.obs.snapshot import ObsSnapshot
from repro.machines.hardware import TABLE1_LABS, LabSpec
from repro.recovery.manifest import (
    CampaignManifest,
    is_campaign_dir,
    load_campaign_state,
    write_campaign_state,
)
from repro.recovery.runtime import (
    RecoveryConfig,
    RecoveryInfo,
    RecoveryRuntime,
    fresh_runtime,
)
from repro.resilience.policy import ResiliencePolicy
from repro.shard.merge import DegradedMergeInfo, merge_degraded, merge_outcomes
from repro.shard.net.config import NetConfig
from repro.shard.plan import ShardPlan
from repro.shard.supervisor import CampaignReport, Supervisor, SupervisorPolicy
from repro.shard.worker import (
    ShardTask,
    _run_shard_task,
    attach_nbench_indexes,
    run_shard,
)
from repro.sim.fleet import FleetSimulator
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta
from repro.traces.store import TraceStore

__all__ = ["MonitoringResult", "run_experiment", "run_paper_experiment"]


@dataclass
class MonitoringResult:
    """Everything a finished monitoring experiment produced.

    Attributes
    ----------
    config:
        The configuration the run used.
    fleet:
        The fleet simulator (holds ground-truth machine logs).  ``None``
        after a sharded run: the fleets lived in worker processes.
    coordinator:
        The DDC coordinator (attempt/timeout accounting); ``None`` after
        a sharded run -- the merged accounting is on :attr:`meta`.
    store:
        The collected trace.
    faults:
        The fault plan the run used (``None`` for a fault-free run).
    observer:
        The observer the run was instrumented with (``None`` when
        uninstrumented); export it with ``observer.snapshot()``.  A
        sharded run instruments each worker separately and returns the
        merged :attr:`obs_snapshot` instead.
    recovery:
        Summary of what the crash-safe persistence layer did (``None``
        for a run without recovery plumbing): checkpoints written,
        journal segments sealed, replay verification counts and any
        quarantine ledger entries.
    obs_snapshot:
        Merged per-shard observability snapshot (sharded, instrumented
        runs only; single-shard runs snapshot their live ``observer``).
    campaign:
        :class:`~repro.shard.supervisor.CampaignReport` of a supervised
        or networked sharded run: per-shard health states, restart (or
        lease regrant) counts, heartbeats, recovery summaries and --
        networked runs only -- lost shards (``None`` otherwise).
    degraded:
        :class:`~repro.shard.merge.DegradedMergeInfo` when a networked
        campaign permanently lost shards and concluded through the
        degraded merge: which shards are excluded and how much of the
        roster the trace covers.  ``None`` for every complete run --
        check this (or the manifest's ``partial`` flag) before treating
        the trace as roster-complete.
    """

    config: ExperimentConfig
    fleet: Optional[FleetSimulator]
    coordinator: Optional[DdcCoordinator]
    store: TraceStore
    faults: Optional[FaultPlan] = None
    observer: Optional[Observer] = None
    recovery: Optional[RecoveryInfo] = None
    obs_snapshot: Optional[ObsSnapshot] = None
    campaign: Optional[CampaignReport] = None
    degraded: Optional[DegradedMergeInfo] = None

    @cached_property
    def trace(self) -> ColumnarTrace:
        """Columnar view of the trace (built lazily, cached)."""
        with maybe_phase(self.observer, "columnarise"):
            return ColumnarTrace(self.store)

    @property
    def meta(self) -> TraceMeta:
        """The trace's experiment metadata."""
        assert self.store.meta is not None
        return self.store.meta


def run_experiment(
    config: Optional[ExperimentConfig] = None,
    *,
    labs: Sequence[LabSpec] = TABLE1_LABS,
    collect_nbench: bool = True,
    strict_postcollect: bool = True,
    fleet_factory=None,
    faults: Optional[FaultPlan] = None,
    observer: Optional[Observer] = None,
    recovery: Optional[RecoveryConfig] = None,
    resume_from: Optional[Union[str, Path, RecoveryConfig]] = None,
    resilience: Optional[ResiliencePolicy] = None,
    shards: Optional[int] = None,
    supervise: Union[bool, SupervisorPolicy, None] = None,
    net: Optional[NetConfig] = None,
) -> MonitoringResult:
    """Run a full monitoring experiment and return its artefacts.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the calibrated paper setup.
    labs:
        Lab catalog (Table 1 by default).
    collect_nbench:
        Whether to run the NBench probe per machine and attach the
        indexes to the trace's static info (needed by Fig. 6).
    strict_postcollect:
        Propagate probe parse errors instead of dropping bad reports.
    fleet_factory:
        ``callable(config, labs) -> FleetSimulator`` override; the
        baseline fleets (corporate, servers, Unix lab) plug in here.
    faults:
        Fault-injection plan wired through the coordinator and executor
        (see :mod:`repro.faults`).  Pair non-trivial plans containing
        :class:`~repro.faults.scenarios.StdoutCorruption` with
        ``strict_postcollect=False`` so garbled reports are dropped, not
        raised.
    observer:
        :class:`repro.obs.Observer` threaded into every layer (engine,
        coordinator, executor, agents).  Wall-clock phase timings land in
        ``experiment.phase_seconds`` gauges; with a fault plan attached,
        the plan's injection ledger is copied into ``faults.injected``
        counters so an exported snapshot is self-contained.  ``None`` or
        a :class:`~repro.obs.NullObserver` reproduces pre-observability
        output byte for byte.
    recovery:
        :class:`repro.recovery.RecoveryConfig` enabling the crash-safe
        persistence layer: every sample is write-ahead journaled and the
        full simulation state checkpointed every N iterations into
        ``recovery.run_dir``.  Like ``faults`` and ``observer``, ``None``
        leaves the hot path hook-free and the output bitwise-identical.
    resume_from:
        Run directory (or :class:`~repro.recovery.RecoveryConfig`) of a
        crashed recovery-enabled run.  The latest valid checkpoint is
        loaded, the journal tail is CRC-verified (corrupt or torn
        segments are quarantined, not crashed on) and the simulation
        continues to the horizon; the regenerated iterations are checked
        against the journaled digests.  Mutually exclusive with
        ``recovery``; per-run arguments (``labs``, ``faults``,
        ``fleet_factory``, ``observer``) come from the checkpoint, and a
        ``config`` passed here must digest-match the checkpointed one.
        A directory holding a campaign manifest (a ``shards>1`` run
        collected with ``recovery=``) resumes the *whole campaign*:
        every shard continues from its own checkpoint under supervision
        and the merged result is byte-identical to the uninterrupted
        run (``docs/shard_recovery.md``).
    resilience:
        Convenience for attaching a
        :class:`~repro.resilience.ResiliencePolicy` without rebuilding
        the config: replaces ``config.ddc.resilience`` before the run.
        ``None`` (default) engages nothing -- traces stay bit-identical
        to pre-resilience builds.  Not accepted together with
        ``resume_from``: a resumed run's policy (and live control-plane
        state) comes from the checkpoint.
    shards:
        Number of lab-aligned worker processes collecting the run
        (``None`` defers to ``config.shards``, default 1).  Every value
        routes through the same :mod:`repro.shard` plan/worker/merge
        pipeline: ``shards=1`` runs the single all-labs shard in-process
        (the classic sequential run, byte for byte), ``shards>1`` fans
        the plan out over worker processes and merges a trace
        byte-identical to the sequential one.  Combined with
        ``recovery`` the fan-out becomes a supervised *campaign*: each
        shard journals and checkpoints into its own
        ``<run_dir>/shard-<k>/`` namespace under a shared campaign
        manifest, a dead worker restarts from its *own* checkpoint while
        healthy shards keep running, and ``resume_from=<run_dir>``
        resumes the whole campaign.  Incompatible with
        ``fleet_factory`` (workers rebuild fleets from the config in
        their own processes).
    supervise:
        Run ``shards>1`` workers under the :class:`repro.shard
        .supervisor.Supervisor` control plane -- heartbeats, liveness
        deadlines, bounded restart-with-backoff, PAUSE/RESUME/STOP
        steering -- instead of a bare process pool.  Pass ``True`` for
        the default :class:`~repro.shard.supervisor.SupervisorPolicy`
        or a policy instance to tune deadlines and restart budgets.
        Implied (and required) whenever ``recovery`` or a campaign
        ``resume_from`` is combined with ``shards>1``.
    net:
        Run the ``shards>1`` fan-out over the **networked** control
        plane (:mod:`repro.shard.net`) instead of local supervised
        processes: the campaign process binds ``net.endpoint`` as the
        lease coordinator, workers connect over TCP (spawned locally
        with ``net.spawn_workers``, or externally via ``repro worker``)
        and every supervisor guarantee -- liveness, bounded regrant,
        steering, manifest mirroring, resume-from-checkpoint over
        reconnect -- is enforced over the wire.  With ``recovery`` the
        run is a full campaign directory exactly like the supervised
        path.  Mutually exclusive with ``supervise`` (the coordinator
        *is* the control plane), ``fleet_factory`` and ``resume_from``;
        requires ``shards >= 2``.  See ``docs/distributed.md``.
    """
    if resume_from is not None:
        if net is not None:
            raise CheckpointError(
                "networked campaign resume (net= with resume_from=) is "
                "not supported: the shard-<k>/ namespaces are worker-"
                "host-local; resume the campaign locally with "
                "resume_from= alone"
            )
        if recovery is not None:
            raise CheckpointError(
                "pass either recovery= (fresh run) or resume_from= "
                "(continue a crashed run), not both"
            )
        if resilience is not None:
            raise CheckpointError(
                "resilience= cannot be changed on resume; the policy and "
                "its control-plane state come from the checkpoint"
            )
        rcfg = (resume_from if isinstance(resume_from, RecoveryConfig)
                else RecoveryConfig(run_dir=resume_from))
        if is_campaign_dir(rcfg.run_dir):
            return _resume_campaign(
                rcfg, config,
                requested_shards=shards,
                observer=observer,
                supervise=supervise,
            )
        if (shards is not None and shards > 1) or (
                config is not None and config.shards > 1):
            raise CheckpointError(
                f"{rcfg.run_dir} holds no campaign manifest: the journal "
                "and checkpoints describe one sequential process; resume "
                "it with shards=1 (only a run collected with shards>1 "
                "and recovery= resumes as a sharded campaign)"
            )
        return _resume_experiment(
            resume_from,
            config,
            labs=labs,
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory,
            faults=faults,
            observer=observer,
        )
    cfg = config or paper_config()
    if resilience is not None:
        cfg = cfg.replace(
            ddc=dataclasses.replace(cfg.ddc, resilience=resilience)
        )
    n_shards = cfg.shards if shards is None else shards
    if n_shards < 1:
        raise ValueError("shards must be at least 1")
    if net is not None:
        if n_shards < 2:
            raise ValueError(
                "net= needs shards >= 2: a networked campaign exists to "
                "fan shards out over workers"
            )
        if supervise:
            raise ValueError(
                "net= and supervise= are mutually exclusive: the "
                "networked coordinator is the campaign's control plane"
            )
        if fleet_factory is not None:
            raise ValueError(
                "fleet_factory is not supported with net=: networked "
                "workers rebuild their fleet from the picklable config"
            )
    if n_shards == 1:
        plan = ShardPlan.build(labs, 1)
        task = ShardTask(
            config=cfg, shard=plan.specs[0], labs=tuple(labs),
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect, faults=faults,
        )
        runtime = fresh_runtime(recovery) if recovery is not None else None
        outcome = run_shard(task, observer=observer,
                            fleet_factory=fleet_factory, runtime=runtime)
        return MonitoringResult(config=cfg, fleet=outcome.fleet,
                                coordinator=outcome.coordinator,
                                store=outcome.store, faults=faults,
                                observer=observer, recovery=outcome.recovery)
    if fleet_factory is not None:
        raise ValueError(
            "fleet_factory is not supported with shards > 1: worker "
            "processes rebuild their fleet from the picklable config"
        )
    plan = ShardPlan.build(labs, n_shards)
    instrument = observer is not None and observer.enabled
    tasks = [
        ShardTask(config=cfg, shard=spec, labs=tuple(labs),
                  collect_nbench=collect_nbench,
                  strict_postcollect=strict_postcollect, faults=faults,
                  instrument=instrument)
        for spec in plan.specs
    ]
    if net is not None:
        manifest = None
        if recovery is not None:
            manifest, tasks = _lay_out_campaign(
                cfg, plan, tasks,
                recovery=recovery, labs=labs, faults=faults,
                collect_nbench=collect_nbench,
                strict_postcollect=strict_postcollect,
                instrument=instrument,
            )
        return _run_networked(cfg, plan, tasks, net=net, recovery=recovery,
                              manifest=manifest, observer=observer)
    if recovery is not None:
        manifest, tasks = _lay_out_campaign(
            cfg, plan, tasks,
            recovery=recovery, labs=labs, faults=faults,
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            instrument=instrument,
        )
        return _run_supervised(cfg, tasks, recovery=recovery,
                               manifest=manifest, observer=observer,
                               supervise=supervise)
    if supervise:
        return _run_supervised(cfg, tasks, recovery=None, manifest=None,
                               observer=observer, supervise=supervise)
    with ProcessPoolExecutor(max_workers=n_shards) as pool:
        futures = [pool.submit(_run_shard_task, task) for task in tasks]
        outcomes = []
        for task, future in zip(tasks, futures):
            try:
                outcomes.append(future.result())
            except BrokenProcessPool as exc:
                raise ShardWorkerError(
                    f"shard {task.shard.index} worker died in the process "
                    "pool (no heartbeat channel, no restart budget); run "
                    "with supervise=True (CLI: --supervise) for liveness "
                    "tracking and bounded restart, or add recovery= for "
                    "per-shard checkpointed restart",
                    shard_index=task.shard.index,
                ) from exc
    store, merged_faults, snapshot = merge_outcomes(outcomes)
    return MonitoringResult(config=cfg, fleet=None, coordinator=None,
                            store=store, faults=merged_faults,
                            observer=None, obs_snapshot=snapshot)


def _run_supervised(
    cfg: ExperimentConfig,
    tasks: Sequence[ShardTask],
    *,
    recovery: Optional[RecoveryConfig],
    manifest: Optional[CampaignManifest],
    observer: Optional[Observer],
    supervise: Union[bool, SupervisorPolicy, None],
) -> MonitoringResult:
    """Fan shard tasks out under the supervisor and merge the outcomes."""
    policy = supervise if isinstance(supervise, SupervisorPolicy) else None
    sup = Supervisor(
        tasks, policy=policy, observer=observer, manifest=manifest,
        run_dir=recovery.run_dir if recovery is not None else None,
    )
    outcomes = sup.run()
    store, merged_faults, snapshot = merge_outcomes(outcomes)
    if manifest is not None and recovery is not None:
        manifest.state = "merged"
        manifest.refresh_watermark()
        manifest.write(recovery.run_dir)
    return MonitoringResult(config=cfg, fleet=None, coordinator=None,
                            store=store, faults=merged_faults,
                            observer=None, obs_snapshot=snapshot,
                            campaign=sup.report())


def _lay_out_campaign(
    cfg: ExperimentConfig,
    plan: ShardPlan,
    tasks: Sequence[ShardTask],
    *,
    recovery: RecoveryConfig,
    labs: Sequence[LabSpec],
    faults: Optional[FaultPlan],
    collect_nbench: bool,
    strict_postcollect: bool,
    instrument: bool,
):
    """Lay out a fresh campaign directory; returns ``(manifest, tasks)``.

    Shared by the supervised and networked paths: validates the run
    directory is genuinely fresh, writes ``manifest.json`` +
    ``campaign.pkl``, and namespaces every task's recovery config into
    its own ``shard-<k>/`` directory.
    """
    from repro.recovery.checkpoint import config_digest

    if recovery.crash_shard is not None \
            and recovery.crash_shard >= len(plan.specs):
        raise ValueError(
            f"crash_shard={recovery.crash_shard} is out of range for "
            f"{len(plan.specs)} shards"
        )
    if is_campaign_dir(recovery.run_dir):
        raise CheckpointError(
            f"{recovery.run_dir} already holds a campaign manifest; pass "
            "resume_from= to continue that campaign, or choose a fresh "
            "directory"
        )
    if (any(recovery.journal_dir.glob("segment-*.jsonl"))
            or any(recovery.checkpoint_dir.glob("ckpt-*.ckpt"))):
        raise CheckpointError(
            f"{recovery.run_dir} already holds a sequential run's journal "
            "or checkpoints; a campaign cannot share its directory -- "
            "resume it with shards=1, or choose a fresh directory"
        )
    manifest = CampaignManifest.fresh(
        recovery.run_dir, config_digest=config_digest(cfg), plan=plan
    )
    manifest.write(recovery.run_dir)
    # The fault plan is pickled pristine: workers mutate their own
    # unpickled copies, never this one.
    write_campaign_state(
        recovery.run_dir, config=cfg, labs=labs, faults=faults,
        collect_nbench=collect_nbench,
        strict_postcollect=strict_postcollect, instrument=instrument,
    )
    tasks = [
        dataclasses.replace(t, recovery=recovery.for_shard(t.shard.index))
        for t in tasks
    ]
    return manifest, tasks


def _run_networked(
    cfg: ExperimentConfig,
    plan: ShardPlan,
    tasks: Sequence[ShardTask],
    *,
    net: NetConfig,
    recovery: Optional[RecoveryConfig],
    manifest: Optional[CampaignManifest],
    observer: Optional[Observer],
) -> MonitoringResult:
    """Fan shard tasks out over the networked control plane and merge.

    The campaign process becomes the lease coordinator on
    ``net.endpoint``; workers connect over TCP -- spawned locally when
    ``net.spawn_workers`` is set, or attached externally with ``repro
    worker``.  Lost shards (regrant budget exhausted under
    ``allow_partial``) conclude through the degraded merge with an
    explicit :class:`~repro.shard.merge.DegradedMergeInfo`.
    """
    from repro.shard.net.coordinator import NetCoordinator
    from repro.shard.net.worker import spawn_local_workers

    coordinator = NetCoordinator(
        tasks,
        endpoint=net.endpoint,
        policy=net.policy,
        observer=observer,
        manifest=manifest,
        run_dir=recovery.run_dir if recovery is not None else None,
        faults=net.faults,
    )
    procs = []
    try:
        if net.spawn_workers:
            procs = spawn_local_workers(
                coordinator.endpoint, net.spawn_workers,
                policy=net.worker_policy,
            )
        outcomes = coordinator.run()
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
    degraded = None
    if coordinator.lost_shards:
        store, merged_faults, snapshot, degraded = merge_degraded(
            outcomes, plan
        )
        # The manifest already concluded as "degraded" with the partial
        # flag and lost-shard list pinned by the coordinator.
    else:
        store, merged_faults, snapshot = merge_outcomes(outcomes)
        if manifest is not None and recovery is not None:
            manifest.state = "merged"
            manifest.refresh_watermark()
            manifest.write(recovery.run_dir)
    return MonitoringResult(config=cfg, fleet=None, coordinator=None,
                            store=store, faults=merged_faults,
                            observer=None, obs_snapshot=snapshot,
                            campaign=coordinator.report(),
                            degraded=degraded)


def _resume_campaign(
    rcfg: RecoveryConfig,
    config: Optional[ExperimentConfig],
    *,
    requested_shards: Optional[int],
    observer: Optional[Observer],
    supervise: Union[bool, SupervisorPolicy, None],
) -> MonitoringResult:
    """Resume a whole campaign: every shard from its own checkpoint.

    Shards that already sealed their journal replay the checkpointed
    tail under digest verification and regenerate their trace; shards
    that crashed mid-run continue from their last checkpoint.  The
    merged result is byte-identical to the uninterrupted run.
    """
    from repro.recovery.checkpoint import config_digest

    manifest = CampaignManifest.load(rcfg.run_dir)
    state = load_campaign_state(rcfg.run_dir)
    if config is not None and config_digest(config) != manifest.config_digest:
        raise CheckpointError(
            f"configuration mismatch: resume was given a config whose "
            f"digest {config_digest(config)[:12]}... differs from the "
            f"campaign manifest's {manifest.config_digest[:12]}...; "
            "resuming it would silently diverge"
        )
    if requested_shards is not None and requested_shards > 1 \
            and requested_shards != manifest.n_shards:
        raise CheckpointError(
            f"the campaign was collected with {manifest.n_shards} shards "
            f"and cannot be resumed with {requested_shards}: the shard "
            "plan (and every journal) is partitioned per shard"
        )
    cfg: ExperimentConfig = state["config"]
    plan = ShardPlan.build(state["labs"], manifest.n_shards)
    manifest.verify_plan(plan)
    # Reset the advisory status columns for the new generation; durable
    # progress (last_iteration) is kept.
    manifest.state = "running"
    for status in manifest.shards.values():
        status.state = "pending"
        status.completed = False
        status.restarts = 0
    tasks = [
        ShardTask(
            config=cfg, shard=spec, labs=state["labs"],
            collect_nbench=state["collect_nbench"],
            strict_postcollect=state["strict_postcollect"],
            faults=state["faults"], instrument=state["instrument"],
            recovery=rcfg.for_shard(spec.index), resume=True,
        )
        for spec in plan.specs
    ]
    return _run_supervised(cfg, tasks, recovery=rcfg, manifest=manifest,
                           observer=observer, supervise=supervise)


def _finish_experiment(
    cfg: ExperimentConfig,
    fleet: FleetSimulator,
    coordinator: DdcCoordinator,
    store: TraceStore,
    meta: TraceMeta,
    *,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    obs: Optional[Observer],
    collect_nbench: bool,
    runtime: Optional[RecoveryRuntime],
) -> MonitoringResult:
    """Post-simulation stages shared by fresh and resumed runs."""
    coordinator.finalize_meta(meta)
    if collect_nbench:
        with maybe_phase(obs, "collect"):
            _attach_nbench_indexes(fleet, meta)
    if obs is not None and faults is not None and not faults.empty:
        for category in FAULT_CATEGORIES:
            obs.metrics.counter("faults.injected", category=category).inc(
                faults.injected.get(category, 0)
            )
    info = runtime.finish() if runtime is not None else None
    return MonitoringResult(config=cfg, fleet=fleet, coordinator=coordinator,
                            store=store, faults=faults, observer=observer,
                            recovery=info)


def _resume_experiment(
    resume_from: Union[str, Path, RecoveryConfig],
    config: Optional[ExperimentConfig],
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
) -> MonitoringResult:
    """Continue a crashed recovery-enabled run from its run directory."""
    from repro.recovery.checkpoint import config_digest, load_latest_checkpoint
    from repro.recovery.journal import Quarantine, retro_seal, scan_journal

    rcfg = (resume_from if isinstance(resume_from, RecoveryConfig)
            else RecoveryConfig(run_dir=resume_from))
    quarantine = Quarantine(rcfg.run_dir)
    ckpt = load_latest_checkpoint(rcfg.checkpoint_dir, quarantine)
    scan = scan_journal(rcfg.journal_dir, quarantine)
    retro_seal(scan)
    if ckpt is None:
        # Crash before the first checkpoint survived: cold-restart from
        # iteration 0.  The journal tail then covers the whole crashed
        # generation, so every regenerated iteration is still verified.
        runtime = RecoveryRuntime(
            rcfg,
            quarantine=quarantine,
            expected_digests=scan.iteration_digests,
            cold_restart=True,
            start_segment=scan.next_segment,
        )
        cfg = config or paper_config()
        return _run_fresh_graph(
            cfg, labs=labs, collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory, faults=faults,
            observer=observer, runtime=runtime,
        )
    if config is not None and config_digest(config) != ckpt.config:
        raise CheckpointError(
            f"configuration mismatch: resume was given a config whose "
            f"digest {config_digest(config)[:12]}... differs from the "
            f"checkpointed run's {ckpt.config[:12]}...; resuming it would "
            "silently diverge"
        )
    state = ckpt.state
    cfg: ExperimentConfig = state["config"]
    fleet: FleetSimulator = state["fleet"]
    coordinator: DdcCoordinator = state["coordinator"]
    store: TraceStore = state["store"]
    ckpt_faults: Optional[FaultPlan] = state["faults"]
    ckpt_observer: Optional[Observer] = state["observer"]
    obs = (ckpt_observer if ckpt_observer is not None
           and ckpt_observer.enabled else None)
    expected = {k: v for k, v in scan.iteration_digests.items()
                if k > ckpt.iteration}
    runtime = RecoveryRuntime(
        rcfg,
        quarantine=quarantine,
        expected_digests=expected,
        resumed_from=ckpt.iteration,
        start_segment=scan.next_segment,
    )
    runtime.bind(fleet=fleet, coordinator=coordinator, store=store,
                 config=cfg, faults=ckpt_faults, observer=ckpt_observer)
    with maybe_phase(obs, "simulate"):
        try:
            fleet.sim.run_until(cfg.horizon)
        except BaseException:
            runtime.hard_stop()
            raise
    assert store.meta is not None
    return _finish_experiment(cfg, fleet, coordinator, store, store.meta,
                              faults=ckpt_faults, observer=ckpt_observer,
                              obs=obs, collect_nbench=collect_nbench,
                              runtime=runtime)


def _run_fresh_graph(
    cfg: ExperimentConfig,
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    runtime: RecoveryRuntime,
) -> MonitoringResult:
    """Build and run a fresh graph under an existing recovery runtime.

    Used by the cold-restart resume path, where the runtime carries the
    crashed generation's iteration digests for replay verification.
    """
    plan = ShardPlan.build(labs, 1)
    task = ShardTask(
        config=cfg, shard=plan.specs[0], labs=tuple(labs),
        collect_nbench=collect_nbench,
        strict_postcollect=strict_postcollect, faults=faults,
    )
    outcome = run_shard(task, observer=observer,
                        fleet_factory=fleet_factory, runtime=runtime)
    return MonitoringResult(config=cfg, fleet=outcome.fleet,
                            coordinator=outcome.coordinator,
                            store=outcome.store, faults=faults,
                            observer=observer, recovery=outcome.recovery)


def _attach_nbench_indexes(fleet: FleetSimulator, meta: TraceMeta) -> None:
    """Back-compat alias for :func:`repro.shard.worker.attach_nbench_indexes`."""
    attach_nbench_indexes(fleet, meta)


def run_paper_experiment(seed: int = 2005) -> MonitoringResult:
    """The paper's 77-day, 169-machine experiment with default calibration."""
    return run_experiment(paper_config(seed=seed))
