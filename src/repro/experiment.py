"""End-to-end monitoring experiment runner.

Ties the substrate together the way the authors ran theirs: a
:class:`~repro.sim.fleet.FleetSimulator` hosting the classrooms, a
:class:`~repro.ddc.coordinator.DdcCoordinator` probing them with
:class:`~repro.ddc.w32probe.W32Probe` every 15 minutes, and an NBench
pass to collect the per-machine performance indexes.

>>> from repro.experiment import run_experiment
>>> from repro.config import ExperimentConfig
>>> result = run_experiment(ExperimentConfig(days=2, seed=1))
>>> result.store is not None
True

A paper-scale run is ``run_experiment(paper_config())`` -- 77 days, 169
machines, ~580k samples, a few tens of seconds of wall time.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config import ExperimentConfig, paper_config
from repro.ddc.coordinator import DdcCoordinator
from repro.errors import CheckpointError
from repro.faults.plan import FAULT_CATEGORIES, FaultPlan
from repro.obs.observer import Observer, maybe_phase
from repro.obs.snapshot import ObsSnapshot
from repro.machines.hardware import TABLE1_LABS, LabSpec
from repro.recovery.runtime import RecoveryConfig, RecoveryInfo, RecoveryRuntime
from repro.resilience.policy import ResiliencePolicy
from repro.shard.merge import merge_outcomes
from repro.shard.plan import ShardPlan
from repro.shard.worker import (
    ShardTask,
    _run_shard_task,
    attach_nbench_indexes,
    run_shard,
)
from repro.sim.fleet import FleetSimulator
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta
from repro.traces.store import TraceStore

__all__ = ["MonitoringResult", "run_experiment", "run_paper_experiment"]


@dataclass
class MonitoringResult:
    """Everything a finished monitoring experiment produced.

    Attributes
    ----------
    config:
        The configuration the run used.
    fleet:
        The fleet simulator (holds ground-truth machine logs).  ``None``
        after a sharded run: the fleets lived in worker processes.
    coordinator:
        The DDC coordinator (attempt/timeout accounting); ``None`` after
        a sharded run -- the merged accounting is on :attr:`meta`.
    store:
        The collected trace.
    faults:
        The fault plan the run used (``None`` for a fault-free run).
    observer:
        The observer the run was instrumented with (``None`` when
        uninstrumented); export it with ``observer.snapshot()``.  A
        sharded run instruments each worker separately and returns the
        merged :attr:`obs_snapshot` instead.
    recovery:
        Summary of what the crash-safe persistence layer did (``None``
        for a run without recovery plumbing): checkpoints written,
        journal segments sealed, replay verification counts and any
        quarantine ledger entries.
    obs_snapshot:
        Merged per-shard observability snapshot (sharded, instrumented
        runs only; single-shard runs snapshot their live ``observer``).
    """

    config: ExperimentConfig
    fleet: Optional[FleetSimulator]
    coordinator: Optional[DdcCoordinator]
    store: TraceStore
    faults: Optional[FaultPlan] = None
    observer: Optional[Observer] = None
    recovery: Optional[RecoveryInfo] = None
    obs_snapshot: Optional[ObsSnapshot] = None

    @cached_property
    def trace(self) -> ColumnarTrace:
        """Columnar view of the trace (built lazily, cached)."""
        with maybe_phase(self.observer, "columnarise"):
            return ColumnarTrace(self.store)

    @property
    def meta(self) -> TraceMeta:
        """The trace's experiment metadata."""
        assert self.store.meta is not None
        return self.store.meta


def run_experiment(
    config: Optional[ExperimentConfig] = None,
    *,
    labs: Sequence[LabSpec] = TABLE1_LABS,
    collect_nbench: bool = True,
    strict_postcollect: bool = True,
    fleet_factory=None,
    faults: Optional[FaultPlan] = None,
    observer: Optional[Observer] = None,
    recovery: Optional[RecoveryConfig] = None,
    resume_from: Optional[Union[str, Path, RecoveryConfig]] = None,
    resilience: Optional[ResiliencePolicy] = None,
    shards: Optional[int] = None,
) -> MonitoringResult:
    """Run a full monitoring experiment and return its artefacts.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the calibrated paper setup.
    labs:
        Lab catalog (Table 1 by default).
    collect_nbench:
        Whether to run the NBench probe per machine and attach the
        indexes to the trace's static info (needed by Fig. 6).
    strict_postcollect:
        Propagate probe parse errors instead of dropping bad reports.
    fleet_factory:
        ``callable(config, labs) -> FleetSimulator`` override; the
        baseline fleets (corporate, servers, Unix lab) plug in here.
    faults:
        Fault-injection plan wired through the coordinator and executor
        (see :mod:`repro.faults`).  Pair non-trivial plans containing
        :class:`~repro.faults.scenarios.StdoutCorruption` with
        ``strict_postcollect=False`` so garbled reports are dropped, not
        raised.
    observer:
        :class:`repro.obs.Observer` threaded into every layer (engine,
        coordinator, executor, agents).  Wall-clock phase timings land in
        ``experiment.phase_seconds`` gauges; with a fault plan attached,
        the plan's injection ledger is copied into ``faults.injected``
        counters so an exported snapshot is self-contained.  ``None`` or
        a :class:`~repro.obs.NullObserver` reproduces pre-observability
        output byte for byte.
    recovery:
        :class:`repro.recovery.RecoveryConfig` enabling the crash-safe
        persistence layer: every sample is write-ahead journaled and the
        full simulation state checkpointed every N iterations into
        ``recovery.run_dir``.  Like ``faults`` and ``observer``, ``None``
        leaves the hot path hook-free and the output bitwise-identical.
    resume_from:
        Run directory (or :class:`~repro.recovery.RecoveryConfig`) of a
        crashed recovery-enabled run.  The latest valid checkpoint is
        loaded, the journal tail is CRC-verified (corrupt or torn
        segments are quarantined, not crashed on) and the simulation
        continues to the horizon; the regenerated iterations are checked
        against the journaled digests.  Mutually exclusive with
        ``recovery``; per-run arguments (``labs``, ``faults``,
        ``fleet_factory``, ``observer``) come from the checkpoint, and a
        ``config`` passed here must digest-match the checkpointed one.
    resilience:
        Convenience for attaching a
        :class:`~repro.resilience.ResiliencePolicy` without rebuilding
        the config: replaces ``config.ddc.resilience`` before the run.
        ``None`` (default) engages nothing -- traces stay bit-identical
        to pre-resilience builds.  Not accepted together with
        ``resume_from``: a resumed run's policy (and live control-plane
        state) comes from the checkpoint.
    shards:
        Number of lab-aligned worker processes collecting the run
        (``None`` defers to ``config.shards``, default 1).  Every value
        routes through the same :mod:`repro.shard` plan/worker/merge
        pipeline: ``shards=1`` runs the single all-labs shard in-process
        (the classic sequential run, byte for byte), ``shards>1`` fans
        the plan out over a :class:`~concurrent.futures
        .ProcessPoolExecutor` and merges a trace byte-identical to the
        sequential one.  Incompatible with ``recovery``/``resume_from``
        (per-shard journaling is rejected loudly, never silently
        different) and with ``fleet_factory`` (workers rebuild fleets
        from the config in their own processes).
    """
    if resume_from is not None:
        if recovery is not None:
            raise CheckpointError(
                "pass either recovery= (fresh run) or resume_from= "
                "(continue a crashed run), not both"
            )
        if resilience is not None:
            raise CheckpointError(
                "resilience= cannot be changed on resume; the policy and "
                "its control-plane state come from the checkpoint"
            )
        if (shards is not None and shards > 1) or (
                config is not None and config.shards > 1):
            raise CheckpointError(
                "a crashed run cannot be resumed as a sharded run: the "
                "journal and checkpoints describe one sequential "
                "process; resume with shards=1"
            )
        return _resume_experiment(
            resume_from,
            config,
            labs=labs,
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory,
            faults=faults,
            observer=observer,
        )
    cfg = config or paper_config()
    if resilience is not None:
        cfg = cfg.replace(
            ddc=dataclasses.replace(cfg.ddc, resilience=resilience)
        )
    n_shards = cfg.shards if shards is None else shards
    if n_shards < 1:
        raise ValueError("shards must be at least 1")
    if n_shards > 1 and cfg.kernel == "columnar":
        raise ValueError(
            "kernel='columnar' is incompatible with shards > 1: a shard "
            "coordinator must shadow foreign machines on the per-object "
            "path; use kernel='auto' (shards fall back transparently)"
        )
    if n_shards == 1:
        plan = ShardPlan.build(labs, 1)
        task = ShardTask(
            config=cfg, shard=plan.specs[0], labs=tuple(labs),
            collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect, faults=faults,
        )
        runtime = _fresh_runtime(recovery) if recovery is not None else None
        outcome = run_shard(task, observer=observer,
                            fleet_factory=fleet_factory, runtime=runtime)
        return MonitoringResult(config=cfg, fleet=outcome.fleet,
                                coordinator=outcome.coordinator,
                                store=outcome.store, faults=faults,
                                observer=observer, recovery=outcome.recovery)
    if recovery is not None:
        raise CheckpointError(
            "crash-safe recovery journals one sequential process; a "
            "sharded run cannot share its run directory -- run with "
            "shards=1, or give each shard count its own fresh run"
        )
    if fleet_factory is not None:
        raise ValueError(
            "fleet_factory is not supported with shards > 1: worker "
            "processes rebuild their fleet from the picklable config"
        )
    plan = ShardPlan.build(labs, n_shards)
    instrument = observer is not None and observer.enabled
    tasks = [
        ShardTask(config=cfg, shard=spec, labs=tuple(labs),
                  collect_nbench=collect_nbench,
                  strict_postcollect=strict_postcollect, faults=faults,
                  instrument=instrument)
        for spec in plan.specs
    ]
    with ProcessPoolExecutor(max_workers=n_shards) as pool:
        outcomes = list(pool.map(_run_shard_task, tasks))
    store, merged_faults, snapshot = merge_outcomes(outcomes)
    return MonitoringResult(config=cfg, fleet=None, coordinator=None,
                            store=store, faults=merged_faults,
                            observer=None, obs_snapshot=snapshot)


def _fresh_runtime(recovery: RecoveryConfig) -> RecoveryRuntime:
    """Recovery runtime for a brand-new run; refuses a used run dir."""
    if (any(recovery.journal_dir.glob("segment-*.jsonl"))
            or any(recovery.checkpoint_dir.glob("ckpt-*.ckpt"))):
        raise CheckpointError(
            f"{recovery.run_dir} already holds a run's journal or "
            "checkpoints; pass resume_from= to continue it, or choose a "
            "fresh directory"
        )
    return RecoveryRuntime(recovery)


def _finish_experiment(
    cfg: ExperimentConfig,
    fleet: FleetSimulator,
    coordinator: DdcCoordinator,
    store: TraceStore,
    meta: TraceMeta,
    *,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    obs: Optional[Observer],
    collect_nbench: bool,
    runtime: Optional[RecoveryRuntime],
) -> MonitoringResult:
    """Post-simulation stages shared by fresh and resumed runs."""
    coordinator.finalize_meta(meta)
    if collect_nbench:
        with maybe_phase(obs, "collect"):
            _attach_nbench_indexes(fleet, meta)
    if obs is not None and faults is not None and not faults.empty:
        for category in FAULT_CATEGORIES:
            obs.metrics.counter("faults.injected", category=category).inc(
                faults.injected.get(category, 0)
            )
    info = runtime.finish() if runtime is not None else None
    return MonitoringResult(config=cfg, fleet=fleet, coordinator=coordinator,
                            store=store, faults=faults, observer=observer,
                            recovery=info)


def _resume_experiment(
    resume_from: Union[str, Path, RecoveryConfig],
    config: Optional[ExperimentConfig],
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
) -> MonitoringResult:
    """Continue a crashed recovery-enabled run from its run directory."""
    from repro.recovery.checkpoint import config_digest, load_latest_checkpoint
    from repro.recovery.journal import Quarantine, retro_seal, scan_journal

    rcfg = (resume_from if isinstance(resume_from, RecoveryConfig)
            else RecoveryConfig(run_dir=resume_from))
    quarantine = Quarantine(rcfg.run_dir)
    ckpt = load_latest_checkpoint(rcfg.checkpoint_dir, quarantine)
    scan = scan_journal(rcfg.journal_dir, quarantine)
    retro_seal(scan)
    if ckpt is None:
        # Crash before the first checkpoint survived: cold-restart from
        # iteration 0.  The journal tail then covers the whole crashed
        # generation, so every regenerated iteration is still verified.
        runtime = RecoveryRuntime(
            rcfg,
            quarantine=quarantine,
            expected_digests=scan.iteration_digests,
            cold_restart=True,
            start_segment=scan.next_segment,
        )
        cfg = config or paper_config()
        return _run_fresh_graph(
            cfg, labs=labs, collect_nbench=collect_nbench,
            strict_postcollect=strict_postcollect,
            fleet_factory=fleet_factory, faults=faults,
            observer=observer, runtime=runtime,
        )
    if config is not None and config_digest(config) != ckpt.config:
        raise CheckpointError(
            f"configuration mismatch: resume was given a config whose "
            f"digest {config_digest(config)[:12]}... differs from the "
            f"checkpointed run's {ckpt.config[:12]}...; resuming it would "
            "silently diverge"
        )
    state = ckpt.state
    cfg: ExperimentConfig = state["config"]
    fleet: FleetSimulator = state["fleet"]
    coordinator: DdcCoordinator = state["coordinator"]
    store: TraceStore = state["store"]
    ckpt_faults: Optional[FaultPlan] = state["faults"]
    ckpt_observer: Optional[Observer] = state["observer"]
    obs = (ckpt_observer if ckpt_observer is not None
           and ckpt_observer.enabled else None)
    expected = {k: v for k, v in scan.iteration_digests.items()
                if k > ckpt.iteration}
    runtime = RecoveryRuntime(
        rcfg,
        quarantine=quarantine,
        expected_digests=expected,
        resumed_from=ckpt.iteration,
        start_segment=scan.next_segment,
    )
    runtime.bind(fleet=fleet, coordinator=coordinator, store=store,
                 config=cfg, faults=ckpt_faults, observer=ckpt_observer)
    with maybe_phase(obs, "simulate"):
        try:
            fleet.sim.run_until(cfg.horizon)
        except BaseException:
            runtime.hard_stop()
            raise
    assert store.meta is not None
    return _finish_experiment(cfg, fleet, coordinator, store, store.meta,
                              faults=ckpt_faults, observer=ckpt_observer,
                              obs=obs, collect_nbench=collect_nbench,
                              runtime=runtime)


def _run_fresh_graph(
    cfg: ExperimentConfig,
    *,
    labs: Sequence[LabSpec],
    collect_nbench: bool,
    strict_postcollect: bool,
    fleet_factory,
    faults: Optional[FaultPlan],
    observer: Optional[Observer],
    runtime: RecoveryRuntime,
) -> MonitoringResult:
    """Build and run a fresh graph under an existing recovery runtime.

    Used by the cold-restart resume path, where the runtime carries the
    crashed generation's iteration digests for replay verification.
    """
    plan = ShardPlan.build(labs, 1)
    task = ShardTask(
        config=cfg, shard=plan.specs[0], labs=tuple(labs),
        collect_nbench=collect_nbench,
        strict_postcollect=strict_postcollect, faults=faults,
    )
    outcome = run_shard(task, observer=observer,
                        fleet_factory=fleet_factory, runtime=runtime)
    return MonitoringResult(config=cfg, fleet=outcome.fleet,
                            coordinator=outcome.coordinator,
                            store=outcome.store, faults=faults,
                            observer=observer, recovery=outcome.recovery)


def _attach_nbench_indexes(fleet: FleetSimulator, meta: TraceMeta) -> None:
    """Back-compat alias for :func:`repro.shard.worker.attach_nbench_indexes`."""
    attach_nbench_indexes(fleet, meta)


def run_paper_experiment(seed: int = 2005) -> MonitoringResult:
    """The paper's 77-day, 169-machine experiment with default calibration."""
    return run_experiment(paper_config(seed=seed))
