"""The recovery runtime: journaling, checkpoint cadence, crash points.

One :class:`RecoveryRuntime` accompanies a crash-safe run.  It is bound
to the live experiment graph after construction and hooks two spots:

- :class:`~repro.ddc.postcollect.SamplePostCollector` calls
  :meth:`RecoveryRuntime.on_sample` with every parsed sample *before*
  admitting it to the :class:`~repro.traces.store.TraceStore`
  (write-ahead discipline);
- :class:`~repro.ddc.coordinator.DdcCoordinator` calls
  :meth:`RecoveryRuntime.on_iteration_end` at the end of every scheduled
  iteration, after the next iteration has been put on the heap -- so a
  checkpoint taken there revives into a run that keeps iterating.

The runtime itself is never pickled into checkpoints (the coordinator
and post-collector drop their references in ``__getstate__``); a resumed
run constructs a fresh runtime around the revived graph.

Crash injection
---------------
:class:`CrashSpec` names an iteration and one of :data:`CRASH_POINTS`;
when the run reaches it the runtime leaves behind exactly the on-disk
residue a real process death would (torn journal line, half-staged
checkpoint temp file, partial segment seal) and raises
:class:`~repro.errors.InjectedCrash`.  The spec lives only in the
runtime, so the resumed run -- like a restarted process -- does not
inherit the kill switch.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.errors import InjectedCrash, RecoveryError, ResumeDivergence
from repro.recovery.checkpoint import write_checkpoint
from repro.recovery.journal import JournalWriter, Quarantine
from repro.traces.records import Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ExperimentConfig
    from repro.ddc.coordinator import DdcCoordinator
    from repro.ddc.postcollect import PostCollectContext
    from repro.faults.plan import FaultPlan
    from repro.obs.observer import Observer
    from repro.sim.fleet import FleetSimulator
    from repro.traces.store import TraceStore

__all__ = [
    "CRASH_POINTS",
    "CrashSpec",
    "RecoveryConfig",
    "RecoveryInfo",
    "RecoveryRuntime",
    "fresh_runtime",
    "sample_to_json_dict",
    "sample_from_json_dict",
    "shard_dir",
]

#: Kill points the crash-injection harness understands.  The
#: ``iteration_start`` point is implemented by the fault-plan scenario
#: :class:`repro.recovery.crashtest.KillAtIteration` instead of here,
#: because it fires before any recovery hook runs.
CRASH_POINTS = (
    "mid_iteration",
    "pre_checkpoint",
    "mid_checkpoint",
    "post_checkpoint",
    "mid_seal",
)


@dataclass(frozen=True)
class CrashSpec:
    """Where to kill the run: an iteration plus a named crash point."""

    iteration: int
    point: str = "post_checkpoint"
    #: For ``mid_iteration``: crash after this many samples of the
    #: iteration have been journaled (the next write is torn).
    sample_index: int = 3

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.point!r}; "
                f"expected one of {CRASH_POINTS}"
            )
        if self.iteration < 0:
            raise ValueError("crash iteration must be non-negative")


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the crash-safe persistence layer.

    Parameters
    ----------
    run_dir:
        Root of the run's on-disk state: ``journal/`` segments,
        ``checkpoints/`` snapshots and the ``quarantine/`` sink.
    checkpoint_every:
        Take a checkpoint every N scheduled iterations (the paper's
        cadence would be every ~2 hours of covered time at N=8).
    segment_records:
        Journal segment rotation threshold (records per segment).
    fsync:
        Whether checkpoints and segment seals fsync (see
        :class:`~repro.recovery.journal.JournalWriter`).
    strict_replay:
        On resume, raise :class:`~repro.errors.ResumeDivergence` when a
        regenerated iteration's digest differs from the journaled one
        (code or config changed under the run); when false the
        divergence is only counted.
    crash_at:
        Optional injected kill point (tests / smoke only).
    crash_shard:
        In a sharded campaign, the shard whose worker ``crash_at``
        kills (default shard 0).  :meth:`for_shard` keeps the kill
        switch only in the targeted shard's derived config, so chaos
        tests take down exactly one worker.
    """

    run_dir: Union[str, Path]
    checkpoint_every: int = 8
    segment_records: int = 4096
    fsync: bool = True
    strict_replay: bool = True
    crash_at: Optional[CrashSpec] = None
    crash_shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.segment_records <= 0:
            raise ValueError("segment_records must be positive")
        if self.crash_shard is not None and self.crash_shard < 0:
            raise ValueError("crash_shard must be non-negative")

    @property
    def journal_dir(self) -> Path:
        return Path(self.run_dir) / "journal"

    @property
    def checkpoint_dir(self) -> Path:
        return Path(self.run_dir) / "checkpoints"

    def for_shard(self, index: int) -> "RecoveryConfig":
        """This campaign's config namespaced to shard ``index``.

        The shard owns ``<run_dir>/shard-<index>/`` -- its private
        ``journal/`` + ``checkpoints/`` + ``quarantine/`` tree, laid out
        exactly like a sequential run directory, so every existing
        journal/checkpoint tool works on it unchanged.  An injected
        ``crash_at`` survives only into the targeted shard's config
        (``crash_shard``, default 0): killing one worker must leave the
        other shards' runtimes untouched.
        """
        import dataclasses as _dc

        victim = 0 if self.crash_shard is None else self.crash_shard
        return _dc.replace(
            self,
            run_dir=shard_dir(self.run_dir, index),
            crash_at=self.crash_at if index == victim else None,
            crash_shard=None,
        )


def shard_dir(run_dir: Union[str, Path], index: int) -> Path:
    """A shard's namespaced run directory inside a campaign root."""
    return Path(run_dir) / f"shard-{index}"


def fresh_runtime(config: RecoveryConfig) -> RecoveryRuntime:
    """Recovery runtime for a brand-new run; refuses a used run dir."""
    from repro.errors import CheckpointError

    if (any(config.journal_dir.glob("segment-*.jsonl"))
            or any(config.checkpoint_dir.glob("ckpt-*.ckpt"))):
        raise CheckpointError(
            f"{config.run_dir} already holds a run's journal or "
            "checkpoints; pass resume_from= to continue it, or choose a "
            "fresh directory"
        )
    return RecoveryRuntime(config)


@dataclass
class RecoveryInfo:
    """What the recovery layer did during one run (in-memory summary)."""

    run_dir: Path
    resumed_from_iteration: Optional[int] = None
    cold_restart: bool = False
    checkpoints_written: int = 0
    segments_sealed: int = 0
    samples_journaled: int = 0
    records_journaled: int = 0
    replay_verified: int = 0
    replay_divergences: int = 0
    quarantine_entries: List[dict] = field(default_factory=list)


def sample_to_json_dict(sample: Sample) -> dict:
    """JSON-safe dict form of a sample (NaN logon time becomes null)."""
    d = {k: getattr(sample, k) for k in Sample.__slots__}
    if math.isnan(d["session_start"]):
        d["session_start"] = None
    return d


def sample_from_json_dict(d: dict) -> Sample:
    """Inverse of :func:`sample_to_json_dict`."""
    d = dict(d)
    if d.get("session_start") is None:
        d["session_start"] = float("nan")
    return Sample(**d)


class RecoveryRuntime:
    """Live recovery state machine for one (possibly resumed) run."""

    def __init__(
        self,
        config: RecoveryConfig,
        *,
        quarantine: Optional[Quarantine] = None,
        expected_digests: Optional[Dict[int, Tuple[str, int]]] = None,
        resumed_from: Optional[int] = None,
        cold_restart: bool = False,
        start_segment: int = 1,
    ):
        self.config = config
        self.quarantine = quarantine or Quarantine(config.run_dir)
        self.journal = JournalWriter(
            config.journal_dir,
            segment_records=config.segment_records,
            start_segment=start_segment,
            fsync=config.fsync,
        )
        #: Iteration digests journaled by the crashed generation, awaiting
        #: re-verification as the resumed run regenerates them.
        self.expected_digests = dict(expected_digests or {})
        self.info = RecoveryInfo(
            run_dir=Path(config.run_dir),
            resumed_from_iteration=resumed_from,
            cold_restart=cold_restart,
        )
        self.crash = config.crash_at
        self.crash_fired = False
        # live experiment graph, attached by bind()
        self._fleet: Optional["FleetSimulator"] = None
        self._coordinator: Optional["DdcCoordinator"] = None
        self._store: Optional["TraceStore"] = None
        self._faults: Optional["FaultPlan"] = None
        self._observer: Optional["Observer"] = None
        self._exp_config: Optional["ExperimentConfig"] = None
        # per-iteration journaling state
        self._iter_crcs: List[str] = []
        self._iter_samples = 0
        self._obs_instruments = None

    # ------------------------------------------------------------------
    def bind(
        self,
        *,
        fleet: "FleetSimulator",
        coordinator: "DdcCoordinator",
        store: "TraceStore",
        config: "ExperimentConfig",
        faults: Optional["FaultPlan"] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        """Attach the live graph and install the collection hooks."""
        self._fleet = fleet
        self._coordinator = coordinator
        self._store = store
        self._faults = faults
        self._exp_config = config
        obs = observer if observer is not None and observer.enabled else None
        self._observer = observer
        if obs is not None:
            m = obs.metrics
            self._obs_instruments = {
                "samples": m.counter("recovery.samples_journaled"),
                "checkpoints": m.counter("recovery.checkpoints_written"),
                "seals": m.counter("recovery.segments_sealed"),
                "verified": m.counter("recovery.replay_verified"),
                "diverged": m.counter("recovery.replay_divergences"),
            }
        coordinator.recovery = self
        coordinator.post_collect.journal = self

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_sample(self, sample: Sample, context: "PostCollectContext") -> None:
        """Write-ahead journal one sample (called before store admission)."""
        crc = self.journal.sample(context.iteration, sample_to_json_dict(sample))
        self._iter_crcs.append(crc)
        self._iter_samples += 1
        self.info.samples_journaled += 1
        self.info.records_journaled += 1
        if self._obs_instruments is not None:
            self._obs_instruments["samples"].inc()
        # At-or-after the spec iteration: the named one may have been a
        # lost iteration (availability draw) with no samples to tear.
        if (self.crash is not None and not self.crash_fired
                and self.crash.point == "mid_iteration"
                and context.iteration >= self.crash.iteration
                and self._iter_samples >= self.crash.sample_index):
            self._die(torn=True)

    def on_iteration_end(self, k: int, t: float, *, ran: bool = True) -> None:
        """Close iteration ``k``: journal marker, verify, maybe checkpoint.

        ``ran`` is forwarded into the iteration marker so journal-only
        consumers (live replay) can reproduce the coordinator's
        ``iterations_run`` count.
        """
        digest = format(
            zlib.crc32("".join(self._iter_crcs).encode("ascii")) & 0xFFFFFFFF,
            "08x",
        )
        self._verify_replay(k, digest)
        crashing = (self.crash is not None and not self.crash_fired
                    and self.crash.iteration == k)
        if crashing and self.crash.point == "mid_seal":
            # Journal the iteration marker, then die half-way through a
            # forced segment seal: the footer line is torn.
            self.journal.iteration_end(k, t, self._iter_samples, digest,
                                       ran=ran)
            self.info.records_journaled += 1
            self.journal.tear('{"crc":"00000000","body":{"kind":"seal"')
            self._die(torn=False)
        self.journal.iteration_end(k, t, self._iter_samples, digest, ran=ran)
        self.info.records_journaled += 1
        if self.journal.segments_sealed > self.info.segments_sealed:
            newly = self.journal.segments_sealed - self.info.segments_sealed
            self.info.segments_sealed = self.journal.segments_sealed
            if self._obs_instruments is not None:
                self._obs_instruments["seals"].inc(newly)
        self._iter_crcs = []
        self._iter_samples = 0
        if (k + 1) % self.config.checkpoint_every == 0:
            if crashing and self.crash.point == "pre_checkpoint":
                self._die(torn=False)
            self._checkpoint(k)
            if crashing and self.crash.point == "post_checkpoint":
                self._die(torn=False)
        elif crashing and self.crash.point in ("pre_checkpoint",
                                               "post_checkpoint"):
            # The kill point was tied to a checkpoint boundary that this
            # iteration is not; die at the iteration end instead so the
            # spec still fires deterministically.
            self._die(torn=False)

    # ------------------------------------------------------------------
    def _verify_replay(self, k: int, digest: str) -> None:
        expected = self.expected_digests.pop(k, None)
        if expected is None:
            return
        exp_digest, exp_n = expected
        if digest == exp_digest and self._iter_samples == exp_n:
            self.info.replay_verified += 1
            if self._obs_instruments is not None:
                self._obs_instruments["verified"].inc()
            return
        self.info.replay_divergences += 1
        if self._obs_instruments is not None:
            self._obs_instruments["diverged"].inc()
        if self.config.strict_replay:
            raise ResumeDivergence(
                f"iteration {k}: resumed run produced {self._iter_samples} "
                f"samples with digest {digest}, journal recorded {exp_n} "
                f"with digest {exp_digest}; the code or configuration "
                "changed between crash and resume"
            )

    def _checkpoint(self, k: int) -> None:
        if self._coordinator is None or self._fleet is None:
            raise RecoveryError("runtime not bound; cannot checkpoint")
        state = {
            "config": self._exp_config,
            "fleet": self._fleet,
            "coordinator": self._coordinator,
            "store": self._store,
            "faults": self._faults,
            "observer": self._observer,
        }
        tear = None
        # Fires at the first checkpoint at-or-after the spec iteration,
        # so the point is reachable from non-boundary iterations too.
        if (self.crash is not None and not self.crash_fired
                and self.crash.point == "mid_checkpoint"
                and self.crash.iteration <= k):
            tear = 128  # stage a fragment of the payload, skip the rename
        if self._obs_instruments is not None:
            with self._observer.span("recovery.checkpoint", iteration=k):
                self._write_checkpoint(k, state, tear)
        else:
            self._write_checkpoint(k, state, tear)
        if tear is not None:
            self._die(torn=False)
        self.info.checkpoints_written += 1
        if self._obs_instruments is not None:
            self._obs_instruments["checkpoints"].inc()

    def _write_checkpoint(self, k: int, state: dict,
                          tear: Optional[int]) -> None:
        write_checkpoint(
            self.config.checkpoint_dir,
            iteration=k,
            sim_now=self._fleet.sim.now,
            config=self._exp_config,
            state=state,
            fsync=self.config.fsync,
            _tear_after=tear,
        )

    def _die(self, *, torn: bool) -> None:
        """Leave crash residue behind and raise :class:`InjectedCrash`."""
        self.crash_fired = True
        if torn:
            self.journal.tear()
        else:
            self.journal.abort()
        raise InjectedCrash(
            f"injected crash at iteration {self.crash.iteration} "
            f"({self.crash.point})"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def hard_stop(self) -> None:
        """Drop file handles without sealing (the run is dying)."""
        self.journal.abort()

    def finish(self) -> RecoveryInfo:
        """Seal the journal at a clean end of run and summarise."""
        before = self.info.segments_sealed
        self.journal.close()
        if (self._obs_instruments is not None
                and self.journal.segments_sealed > before):
            self._obs_instruments["seals"].inc(
                self.journal.segments_sealed - before
            )
        self.info.segments_sealed = self.journal.segments_sealed
        self.info.records_journaled = self.journal.records_total
        self.info.quarantine_entries = list(self.quarantine.entries)
        return self.info
