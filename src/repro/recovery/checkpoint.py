"""Versioned, atomic experiment checkpoints.

A checkpoint is a full snapshot of the live experiment graph -- the
fleet (machines, agents, behaviour RNG streams), the discrete-event
simulator (clock + pending heap), the DDC coordinator (schedule position
and accounting), the trace store, the fault plan (injection cursor and
private RNG) and the observer -- taken at an iteration boundary.  The
simulation is deterministic, so restoring the graph and running to the
horizon reproduces the uninterrupted run sample for sample.

File format (``ckpt-00000123.ckpt``)
------------------------------------
Line 1 is a JSON header::

    {"v": 1, "iteration": 123, "sim_now": 110700.0,
     "config": "<sha256 of the run config>", "payload_len": N,
     "payload_crc": "xxxxxxxx"}

followed by ``N`` bytes of pickled state.  Writes are atomic: the file
is staged as ``.tmp`` in the same directory, flushed, fsynced, then
``os.replace``d into place and the directory fsynced -- a crash leaves
either the previous checkpoint set or the new one, never a half
checkpoint under the real name.

Loading walks checkpoints newest-first and *quarantines* (moves +
ledgers) any with a bad header, payload CRC mismatch or unpicklable
payload, falling back to the next older one.  Stale ``.tmp`` files from
a crash mid-checkpoint are swept into quarantine as well.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.config import ExperimentConfig
from repro.errors import CheckpointError
from repro.recovery.journal import Quarantine, _fsync_dir

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "config_digest",
    "write_checkpoint",
    "load_latest_checkpoint",
]

#: Checkpoint schema version (bumped on incompatible state changes).
CHECKPOINT_VERSION = 1

_CKPT_FMT = "ckpt-{:08d}.ckpt"


def config_digest(config: ExperimentConfig) -> str:
    """Stable digest of a run configuration.

    Resume refuses to continue a checkpoint under a different
    configuration -- the simulation would silently diverge from both the
    original run and a fresh one.
    """
    blob = json.dumps(config.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Checkpoint:
    """One loaded checkpoint: header fields plus the revived state."""

    version: int
    iteration: int
    sim_now: float
    config: str
    path: Path
    state: Any


def write_checkpoint(
    ckpt_dir: Union[str, Path],
    *,
    iteration: int,
    sim_now: float,
    config: ExperimentConfig,
    state: Any,
    fsync: bool = True,
    _tear_after: Optional[int] = None,
) -> Path:
    """Atomically write one checkpoint; returns its final path.

    ``_tear_after`` is the crash-injection hook: when set, only that many
    payload bytes are staged and the rename never happens, emulating a
    process death mid-checkpoint.
    """
    ckpt_dir = Path(ckpt_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "v": CHECKPOINT_VERSION,
        "iteration": int(iteration),
        "sim_now": float(sim_now),
        "config": config_digest(config),
        "payload_len": len(payload),
        "payload_crc": format(zlib.crc32(payload) & 0xFFFFFFFF, "08x"),
    }
    path = ckpt_dir / _CKPT_FMT.format(iteration)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode("ascii") + b"\n")
        if _tear_after is not None:
            fh.write(payload[:_tear_after])
            fh.flush()
            return tmp  # crash emulation: no rename, no fsync
        fh.write(payload)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(ckpt_dir)
    return path


def _read_checkpoint(path: Path) -> Checkpoint:
    with open(path, "rb") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path.name}: bad header") from exc
        if header.get("v") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path.name}: unsupported checkpoint version "
                f"{header.get('v')!r} (supported: {CHECKPOINT_VERSION})"
            )
        payload = fh.read()
    if len(payload) != header.get("payload_len"):
        raise CheckpointError(
            f"{path.name}: truncated payload "
            f"({len(payload)} of {header.get('payload_len')} bytes)"
        )
    crc = format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")
    if crc != header.get("payload_crc"):
        raise CheckpointError(
            f"{path.name}: payload CRC mismatch "
            f"(recorded {header.get('payload_crc')}, actual {crc})"
        )
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # unpickling failures are corruption too
        raise CheckpointError(f"{path.name}: unpicklable payload: {exc}") from exc
    return Checkpoint(
        version=int(header["v"]),
        iteration=int(header["iteration"]),
        sim_now=float(header["sim_now"]),
        config=str(header["config"]),
        path=path,
        state=state,
    )


def load_latest_checkpoint(
    ckpt_dir: Union[str, Path], quarantine: Quarantine
) -> Optional[Checkpoint]:
    """Load the newest valid checkpoint, quarantining damaged ones.

    Returns ``None`` when no valid checkpoint exists (the caller then
    cold-restarts the run from iteration 0).
    """
    ckpt_dir = Path(ckpt_dir)
    if not ckpt_dir.is_dir():
        return None
    # Sweep crash residue first: a .tmp is a checkpoint whose rename
    # never happened and is by definition untrustworthy.
    for tmp in sorted(ckpt_dir.glob("*.tmp")):
        quarantine.report("stale_checkpoint_tmp", file=tmp)
    candidates = sorted(ckpt_dir.glob("ckpt-*.ckpt"), reverse=True)
    for path in candidates:
        try:
            return _read_checkpoint(path)
        except CheckpointError as exc:
            quarantine.report("bad_checkpoint", file=path, detail=str(exc))
    return None
