"""Crash-safe persistence and resume for long monitoring experiments.

The paper's DDC ran unattended for 77 days and shrugged off coordinator
restarts (509 of 7,392 iterations were simply lost); this package gives
the reproduction the same resilience, without losing iterations:

- :mod:`repro.recovery.journal` -- a write-ahead **trace journal**:
  append-only, CRC-guarded, segment-rotated JSONL the coordinator writes
  every sample to before it enters the in-memory store;
- :mod:`repro.recovery.checkpoint` -- **experiment checkpoints**:
  versioned, atomically-renamed snapshots of the full live simulation
  graph (clock, event heap, RNG streams, fleet state, DDC schedule
  position, fault-plan cursor) taken every N iterations;
- :mod:`repro.recovery.runtime` -- the glue that hooks both into the
  DDC collection loop and, on resume, re-verifies regenerated
  iterations against the journaled digests;
- :mod:`repro.recovery.crashtest` -- a crash-injection harness proving,
  property-test style, that ``resume(crash(run))`` is sample-for-sample
  identical to the run that never crashed.

Entry points: ``run_experiment(recovery=RecoveryConfig(run_dir))`` for a
crash-safe run, ``run_experiment(resume_from=run_dir)`` to continue one,
and ``repro run --recover-dir DIR [--resume]`` on the command line.
Damaged artefacts -- torn journal tails, corrupt segments, half-written
checkpoints -- are quarantined into ``<run_dir>/quarantine/`` with a
machine-readable reason ledger, never crashed on.
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    config_digest,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.recovery.crashtest import (
    ALL_KILL_POINTS,
    KillAtIteration,
    crash_and_resume,
    result_fingerprint,
    verify_crash_resume,
)
from repro.recovery.journal import (
    JOURNAL_VERSION,
    JournalScan,
    JournalTailReader,
    JournalWriter,
    Quarantine,
    TailAnomaly,
    scan_journal,
)
from repro.recovery.manifest import (
    CampaignManifest,
    ShardStatus,
    is_campaign_dir,
    journal_digest,
    load_campaign_state,
    write_campaign_state,
)
from repro.recovery.runtime import (
    CRASH_POINTS,
    CrashSpec,
    RecoveryConfig,
    RecoveryInfo,
    RecoveryRuntime,
    fresh_runtime,
    shard_dir,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "JOURNAL_VERSION",
    "ALL_KILL_POINTS",
    "CRASH_POINTS",
    "CampaignManifest",
    "Checkpoint",
    "CrashSpec",
    "JournalScan",
    "JournalTailReader",
    "JournalWriter",
    "KillAtIteration",
    "Quarantine",
    "ShardStatus",
    "TailAnomaly",
    "RecoveryConfig",
    "RecoveryInfo",
    "RecoveryRuntime",
    "config_digest",
    "crash_and_resume",
    "fresh_runtime",
    "is_campaign_dir",
    "journal_digest",
    "load_campaign_state",
    "load_latest_checkpoint",
    "result_fingerprint",
    "scan_journal",
    "shard_dir",
    "verify_crash_resume",
    "write_campaign_state",
    "write_checkpoint",
]
