"""Crash-injection harness: prove resume(crash(run)) == run.

The harness kills a recovery-enabled experiment at a chosen point,
resumes it from disk, and checks -- via an exact fingerprint over every
sample and accounting counter -- that the stitched-together run is
bit-for-bit the run that never crashed.  It composes two kill
mechanisms:

- :class:`KillAtIteration`, a :class:`~repro.faults.scenarios
  .FaultScenario` that raises :class:`~repro.errors.InjectedCrash` from
  the coordinator's ``coordinator_down`` hook at the *start* of an
  iteration (the fault-plan machinery's natural insertion point), and
- the finer-grained :class:`~repro.recovery.runtime.CrashSpec` points
  the recovery runtime implements itself (mid-iteration torn write,
  mid-checkpoint staged temp file, mid-seal torn footer, ...).

A killed scenario does not survive checkpointing: ``__getstate__``
disarms it, mirroring how a real crash kills the process but not the
operator's resume command.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Tuple, Union

import numpy as np

from repro.config import ExperimentConfig
from repro.errors import InjectedCrash, RecoveryError
from repro.faults.plan import FaultPlan, FaultScenario
from repro.recovery.runtime import CRASH_POINTS, CrashSpec, RecoveryConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment import MonitoringResult

__all__ = [
    "ALL_KILL_POINTS",
    "KillAtIteration",
    "result_fingerprint",
    "crash_and_resume",
    "verify_crash_resume",
]

#: Every kill point the harness can exercise: the fault-plan hook plus
#: the recovery runtime's own crash points.
ALL_KILL_POINTS = ("iteration_start",) + CRASH_POINTS

#: TraceMeta counters folded into the result fingerprint.
_META_COUNTERS = (
    "iterations_scheduled",
    "iterations_run",
    "attempts",
    "timeouts",
    "access_denied",
    "samples_collected",
    "parse_failures",
    "retries",
    "retries_recovered",
    "retries_skipped",
    "shed",
    "breaker_skipped",
    "hedges",
    "hedge_wins",
)


class KillAtIteration(FaultScenario):
    """Kill the coordinator process at the start of iteration ``k``.

    Raised from the fault plan's ``coordinator_down`` hook, i.e. before
    the iteration draws availability or probes anything -- the moment a
    real coordinator host would reboot under the run.  The scenario
    draws no randomness, so a plan containing only kill scenarios leaves
    the trace identical to a fault-free run.

    Pickling (and therefore checkpointing) disarms the scenario: the
    revived plan behaves like the restarted process, which no longer has
    a kill scheduled.
    """

    def __init__(self, iteration: int):
        if iteration < 0:
            raise ValueError("kill iteration must be non-negative")
        self.iteration = int(iteration)
        self.armed = True

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["armed"] = False
        return state

    def coordinator_down(self, t: float, iteration: int,
                         rng: np.random.Generator) -> bool:
        if self.armed and iteration == self.iteration:
            self.armed = False
            raise InjectedCrash(
                f"injected crash at iteration {iteration} (iteration_start)"
            )
        return False


def result_fingerprint(result: "MonitoringResult") -> str:
    """SHA-256 identity of a finished run's observable output.

    Covers every sample (``repr`` round-trips doubles exactly), the
    coordinator's accounting counters and the per-machine static info
    including NBench indexes -- equality of fingerprints is bitwise
    equality of everything the analyses consume.
    """
    h = hashlib.sha256()
    for sample in result.store.samples():
        h.update(repr(sample).encode())
    meta = result.store.meta
    if meta is not None:
        for name in _META_COUNTERS:
            h.update(f"{name}={getattr(meta, name)}".encode())
        for machine_id in sorted(meta.statics):
            h.update(repr(meta.statics[machine_id]).encode())
    return h.hexdigest()


def _make_recovery(run_dir: Union[str, Path], crash: Optional[CrashSpec],
                   **kwargs: object) -> RecoveryConfig:
    kwargs.setdefault("checkpoint_every", 8)
    kwargs.setdefault("fsync", False)  # test speed; the format is identical
    return RecoveryConfig(run_dir=run_dir, crash_at=crash, **kwargs)


#: Builds a fresh fault plan per run.  A :class:`FaultPlan` is stateful
#: (private RNG, injection tallies), so the crashed run and the baseline
#: must each get their own instance or they would diverge spuriously.
FaultsFactory = Callable[[], Optional[FaultPlan]]


def crash_and_resume(
    config: ExperimentConfig,
    kill_point: str,
    kill_iteration: int,
    run_dir: Union[str, Path],
    *,
    faults_factory: Optional[FaultsFactory] = None,
    collect_nbench: bool = True,
    **recovery_kwargs: object,
) -> "MonitoringResult":
    """Run, die at the kill point, resume from disk; return the result.

    Raises
    ------
    RecoveryError
        If the run completed without the injected crash firing (the kill
        point was unreachable -- usually an iteration beyond the run).
    """
    from repro.experiment import run_experiment

    if kill_point not in ALL_KILL_POINTS:
        raise ValueError(
            f"unknown kill point {kill_point!r}; expected {ALL_KILL_POINTS}"
        )
    faults = faults_factory() if faults_factory is not None else None
    if kill_point == "iteration_start":
        scenarios = (list(faults.scenarios) if faults is not None else [])
        scenarios.append(KillAtIteration(kill_iteration))
        faults = FaultPlan(scenarios,
                           seed=faults.seed if faults is not None else 0)
        crash = None
    else:
        crash = CrashSpec(iteration=kill_iteration, point=kill_point)
    recovery = _make_recovery(run_dir, crash, **recovery_kwargs)
    try:
        run_experiment(config, faults=faults, recovery=recovery,
                       collect_nbench=collect_nbench)
    except InjectedCrash:
        pass
    else:
        raise RecoveryError(
            f"kill point {kill_point!r} at iteration {kill_iteration} "
            "never fired; the run completed uninterrupted"
        )
    resume = _make_recovery(run_dir, None, **recovery_kwargs)
    return run_experiment(config, resume_from=resume,
                          collect_nbench=collect_nbench)


def verify_crash_resume(
    config: ExperimentConfig,
    kill_point: str,
    kill_iteration: int,
    run_dir: Union[str, Path],
    *,
    faults_factory: Optional[FaultsFactory] = None,
    baseline: Optional["MonitoringResult"] = None,
    **recovery_kwargs: object,
) -> Tuple[bool, str, str]:
    """Property check: the resumed run equals the uninterrupted one.

    Returns ``(identical, resumed_fingerprint, baseline_fingerprint)``.
    The baseline runs without any recovery plumbing at all, so the check
    also covers the layer's differential guarantee (journaling and
    checkpointing leave the trace untouched).
    """
    from repro.experiment import run_experiment

    resumed = crash_and_resume(
        config, kill_point, kill_iteration, run_dir,
        faults_factory=faults_factory, **recovery_kwargs,
    )
    if baseline is None:
        plan = faults_factory() if faults_factory is not None else None
        baseline = run_experiment(config, faults=plan)
    fp_resumed = result_fingerprint(resumed)
    fp_baseline = result_fingerprint(baseline)
    return fp_resumed == fp_baseline, fp_resumed, fp_baseline
