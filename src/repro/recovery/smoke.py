"""Crash-resume smoke check: ``python -m repro.recovery.smoke``.

CI's end-to-end exercise of the recovery subsystem.  For every kill
point the harness knows, it crashes a short monitored run at a
**seed-derived** iteration (so the covered spot drifts as CI changes the
seed, instead of fossilising one code path), resumes it from disk and
diffs the stitched-together result against an uninterrupted baseline
run, fingerprint for fingerprint.

Exit code 0 means every kill point resumed bit-identically.  On failure
the run directories (journals, checkpoints and the quarantine ledger)
are left behind under ``--work-dir`` for the CI job to upload as an
artifact.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.recovery.crashtest import (
    ALL_KILL_POINTS,
    result_fingerprint,
    verify_crash_resume,
)

__all__ = ["main", "derive_kill_iteration"]


def derive_kill_iteration(config: ExperimentConfig) -> int:
    """Seed-derived kill spot in the middle half of the run.

    Deterministic for a given configuration, but different seeds land on
    different iterations, so repeated CI runs sweep the schedule instead
    of always killing the same place.
    """
    iterations = int(config.horizon / config.ddc.sample_period)
    quarter = max(1, iterations // 4)
    return quarter + (config.seed * 2654435761) % (2 * quarter)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.recovery.smoke",
        description="crash a run at every kill point, resume, diff",
    )
    parser.add_argument("--days", type=int, default=2,
                        help="run length in days (default 2)")
    parser.add_argument("--seed", type=int, default=2005,
                        help="experiment seed (default 2005)")
    parser.add_argument("--work-dir", default="crash-smoke",
                        help="where run directories live; failures leave "
                        "theirs behind for artifact upload (default "
                        "./crash-smoke)")
    parser.add_argument("--kill-points", nargs="*", default=None,
                        metavar="POINT",
                        help=f"subset to exercise (default: all of "
                        f"{', '.join(ALL_KILL_POINTS)})")
    args = parser.parse_args(argv)

    config = ExperimentConfig(days=args.days, seed=args.seed)
    kill_iteration = derive_kill_iteration(config)
    points = args.kill_points or list(ALL_KILL_POINTS)
    work = Path(args.work_dir)

    print(f"baseline: days={args.days} seed={args.seed} "
          f"kill_iteration={kill_iteration}")
    t0 = time.time()
    baseline = run_experiment(config)
    print(f"baseline fingerprint {result_fingerprint(baseline)[:16]}... "
          f"({time.time() - t0:.1f}s, {len(baseline.store)} samples)")

    failures = 0
    for point in points:
        run_dir = work / point
        if run_dir.exists():
            shutil.rmtree(run_dir)
        t0 = time.time()
        identical, fp_resumed, fp_baseline = verify_crash_resume(
            config, point, kill_iteration, run_dir, baseline=baseline,
        )
        verdict = "PASS" if identical else "FAIL"
        print(f"{verdict} {point:16s} resumed={fp_resumed[:16]}... "
              f"baseline={fp_baseline[:16]}... ({time.time() - t0:.1f}s)")
        if identical:
            shutil.rmtree(run_dir, ignore_errors=True)
        else:
            failures += 1
            ledger = run_dir / "quarantine" / "ledger.jsonl"
            print(f"     evidence kept in {run_dir}"
                  + (f" (ledger: {ledger})" if ledger.exists() else ""))
    if failures:
        print(f"{failures}/{len(points)} kill points diverged",
              file=sys.stderr)
        return 1
    print(f"all {len(points)} kill points resumed bit-identically")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    raise SystemExit(main())
