"""Write-ahead trace journal: append-only, CRC-guarded, segment-rotated.

The journal is the durability half of :mod:`repro.recovery`.  Every
sample the coordinator collects is appended here *before* it is admitted
into the in-memory :class:`~repro.traces.store.TraceStore`, and every
iteration closes with a marker carrying a digest of the iteration's
samples.  A crashed run therefore leaves a byte-exact, checkable record
of everything it had collected.

Format
------
One JSONL file per **segment** (``segment-000001.jsonl`` ...).  Each line
is ``{"crc": "xxxxxxxx", "body": {...}}`` where ``crc`` is the CRC32 (hex)
of the compact, key-sorted JSON encoding of ``body``.  Body kinds:

``head``
    First record of a segment: schema version and segment index.
``sample``
    One collected sample (iteration index + the full field dict).
``iter``
    End-of-iteration marker: iteration index, simulation time, number of
    samples this iteration and the CRC32 digest chained over their record
    CRCs (``digest = crc32(crc_1 || crc_2 || ...)``).
``seal``
    Segment footer: record count and a whole-segment digest.  A sealed
    segment is immutable; only the newest segment may lack a seal.

Read-side policy (crash tolerance)
----------------------------------
Reading never raises on damaged data.  A torn trailing line (the
signature of a crash mid-``write``) is dropped and logged; a segment with
interior CRC damage or a bad seal is moved wholesale into the run's
``quarantine/`` directory and recorded in ``quarantine/ledger.jsonl``
with a machine-readable reason.  Because the simulation re-generates
samples deterministically from the last checkpoint, journal damage costs
verification coverage, never result correctness.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "JournalWriter",
    "JournalRecord",
    "Quarantine",
    "SegmentScan",
    "JournalScan",
    "encode_record",
    "decode_line",
    "scan_journal",
]

#: Journal schema version (bumped on incompatible format changes).
JOURNAL_VERSION = 1

_SEGMENT_FMT = "segment-{:06d}.jsonl"


def _crc_hex(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def encode_record(body: dict) -> str:
    """Encode one journal line (compact JSON + CRC32 envelope)."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"crc": _crc_hex(payload.encode("utf-8")), "body": body},
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_line(line: str) -> dict:
    """Decode and CRC-verify one journal line; returns the body.

    Raises
    ------
    JournalError
        On malformed JSON, a missing envelope field, or a CRC mismatch.
    """
    try:
        envelope = json.loads(line)
        crc, body = envelope["crc"], envelope["body"]
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise JournalError(f"unparseable journal line: {exc}") from exc
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    actual = _crc_hex(payload.encode("utf-8"))
    if actual != crc:
        raise JournalError(f"CRC mismatch: recorded {crc}, actual {actual}")
    return body


class Quarantine:
    """The run's corruption sink: a directory plus a reason ledger.

    Damaged artefacts (journal segments, checkpoints, stale temp files)
    are *moved* here -- never deleted, so post-mortems keep the evidence
    -- and each move appends one JSON line to ``ledger.jsonl``.
    """

    LEDGER = "ledger.jsonl"

    def __init__(self, run_dir: Union[str, Path]):
        self.dir = Path(run_dir) / "quarantine"
        #: Ledger entries appended during this process's lifetime.
        self.entries: List[dict] = []

    @property
    def ledger_path(self) -> Path:
        return self.dir / self.LEDGER

    def report(self, reason: str, *, file: Optional[Path] = None,
               **detail: object) -> dict:
        """Record one corruption event; move ``file`` here if given."""
        self.dir.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, object] = {"reason": reason, **detail}
        if file is not None:
            target = self.dir / file.name
            n = 1
            while target.exists():
                target = self.dir / f"{file.name}.{n}"
                n += 1
            os.replace(file, target)
            entry["file"] = file.name
            entry["quarantined_as"] = target.name
        with open(self.ledger_path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self.entries.append(entry)
        return entry

    def read_ledger(self) -> List[dict]:
        """All ledger entries ever written for this run."""
        if not self.ledger_path.exists():
            return []
        out = []
        for line in self.ledger_path.read_text().splitlines():
            line = line.strip()
            if line:
                out.append(json.loads(line))
        return out


class JournalWriter:
    """Appends CRC-guarded records, rotating and sealing segments.

    Parameters
    ----------
    journal_dir:
        Directory holding the segment files (created if missing).
    segment_records:
        Soft rotation threshold: a segment is sealed at the first
        iteration boundary at or past this many records, keeping
        segments aligned with whole iterations.
    start_segment:
        Index of the first segment this writer creates; a resumed run
        continues numbering after the crashed generation's segments.
    fsync:
        Whether seals and closes fsync to disk.  Individual records are
        always flushed to the OS (that *is* the write-ahead guarantee);
        fsync additionally survives power loss, at a syscall cost.
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        *,
        segment_records: int = 4096,
        start_segment: int = 1,
        fsync: bool = True,
    ):
        if segment_records <= 0:
            raise JournalError("segment_records must be positive")
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.segment_records = int(segment_records)
        self.fsync = bool(fsync)
        self.segment = int(start_segment) - 1
        self.records_in_segment = 0
        self.records_total = 0
        self.segments_sealed = 0
        self._fh = None
        self._segment_crcs: List[str] = []

    # ------------------------------------------------------------------
    @property
    def segment_path(self) -> Optional[Path]:
        """Path of the open segment, or ``None`` before the first write."""
        if self._fh is None:
            return None
        return self.dir / _SEGMENT_FMT.format(self.segment)

    def _open_next(self) -> None:
        self.segment += 1
        path = self.dir / _SEGMENT_FMT.format(self.segment)
        if path.exists():
            raise JournalError(f"segment already exists: {path}")
        self._fh = open(path, "w")
        self.records_in_segment = 0
        self._segment_crcs = []
        self._write({"kind": "head", "version": JOURNAL_VERSION,
                     "segment": self.segment})

    def _write(self, body: dict) -> str:
        if self._fh is None:
            self._open_next()
        line = encode_record(body)
        self._fh.write(line + "\n")
        # Flush every record: a sample must reach the OS before it is
        # admitted into the in-memory store (write-ahead discipline).
        self._fh.flush()
        self.records_in_segment += 1
        self.records_total += 1
        crc = json.loads(line)["crc"]
        self._segment_crcs.append(crc)
        return crc

    # ------------------------------------------------------------------
    # record kinds
    # ------------------------------------------------------------------
    def sample(self, iteration: int, data: dict) -> str:
        """Journal one collected sample; returns its record CRC."""
        return self._write({"kind": "sample", "k": iteration, "data": data})

    def iteration_end(self, iteration: int, t: float, n_samples: int,
                      digest: str) -> None:
        """Close iteration ``iteration``; rotate the segment if due."""
        self._write({"kind": "iter", "k": iteration, "t": t,
                     "n": n_samples, "digest": digest})
        if self.records_in_segment >= self.segment_records:
            self.seal()

    def seal(self) -> None:
        """Append the segment footer, fsync and close the segment."""
        if self._fh is None:
            return
        digest = _crc_hex("".join(self._segment_crcs).encode("ascii"))
        # The seal covers every record before it, itself excluded.
        self._write({"kind": "seal", "segment": self.segment,
                     "records": self.records_in_segment - 1,
                     "digest": digest})
        self._close(sync=self.fsync)
        self.segments_sealed += 1

    def _close(self, *, sync: bool) -> None:
        fh, self._fh = self._fh, None
        if fh is None:
            return
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        fh.close()
        if sync:
            _fsync_dir(self.dir)

    def abort(self) -> None:
        """Close the raw handle without sealing (crash emulation path)."""
        self._close(sync=False)

    def close(self) -> None:
        """Seal the open segment and stop writing."""
        self.seal()

    # Torn-write emulation used by the crash-injection harness: a real
    # crash can leave a half-written line at the tail of the newest
    # segment; this writes one deliberately.
    def tear(self, fragment: str = '{"crc":"dead') -> None:
        if self._fh is None:
            self._open_next()
        self._fh.write(fragment)
        self._fh.flush()
        self._close(sync=False)


# ----------------------------------------------------------------------
# read side
# ----------------------------------------------------------------------
@dataclass
class JournalRecord:
    """One decoded journal record plus its provenance."""

    segment: int
    line_no: int
    body: dict


@dataclass
class SegmentScan:
    """Read-side summary of one segment file."""

    index: int
    path: Path
    records: List[JournalRecord] = field(default_factory=list)
    sealed: bool = False
    torn_tail: bool = False
    quarantined: bool = False
    reason: Optional[str] = None


@dataclass
class JournalScan:
    """Result of :func:`scan_journal` over a whole journal directory."""

    segments: List[SegmentScan] = field(default_factory=list)
    #: Per-iteration ``(digest, n_samples)`` from surviving ``iter`` records.
    iteration_digests: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    #: Highest segment index seen on disk (0 when the journal is empty).
    last_segment: int = 0
    #: Segments moved to quarantine during this scan.
    quarantined: int = 0
    torn_tails: int = 0

    def records(self) -> Iterator[JournalRecord]:
        """All surviving records, in segment then line order."""
        for seg in self.segments:
            if not seg.quarantined:
                yield from seg.records

    @property
    def next_segment(self) -> int:
        """Index a new writer generation should start at."""
        return self.last_segment + 1


def _segment_files(journal_dir: Path) -> List[Tuple[int, Path]]:
    out = []
    if not journal_dir.is_dir():
        return out
    for path in sorted(journal_dir.glob("segment-*.jsonl")):
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        out.append((index, path))
    out.sort()
    return out


def _scan_segment(index: int, path: Path, is_last: bool,
                  quarantine: Quarantine) -> SegmentScan:
    scan = SegmentScan(index=index, path=path)
    raw = path.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    # A file ending in "\n" splits into [.., ""]; anything non-empty after
    # the final newline is a torn trailing write.
    trailing = lines[-1]
    lines = lines[:-1]
    crcs: List[str] = []
    for line_no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            body = decode_line(line)
        except JournalError as exc:
            if is_last and line_no == len(lines) and not trailing:
                # Damage limited to the final complete-looking line of
                # the newest segment: treat as a torn tail, keep prefix.
                scan.torn_tail = True
                quarantine.report(
                    "torn_tail", segment=index, line=line_no,
                    detail=str(exc), action="dropped",
                )
                break
            scan.quarantined = True
            scan.reason = f"crc_mismatch at line {line_no}: {exc}"
            quarantine.report(
                "crc_mismatch", file=path, segment=index, line=line_no,
                detail=str(exc),
            )
            return scan
        if body.get("kind") == "seal":
            expected = _crc_hex("".join(crcs).encode("ascii"))
            if (body.get("records") != len(crcs) - 1
                    or body.get("digest") != expected):
                scan.quarantined = True
                scan.reason = "bad_seal"
                quarantine.report(
                    "bad_seal", file=path, segment=index, line=line_no,
                    recorded=body.get("digest"), actual=expected,
                )
                return scan
            scan.sealed = True
        else:
            scan.records.append(JournalRecord(index, line_no, body))
        crcs.append(json.loads(line)["crc"])
    if trailing.strip():
        scan.torn_tail = True
        quarantine.report(
            "torn_tail", segment=index, line=len(lines) + 1,
            detail=f"{len(trailing)} bytes without newline", action="dropped",
        )
    if scan.torn_tail and not is_last:
        # Torn writes can only happen at the journal's true tail; a torn
        # interior segment means out-of-order damage.
        scan.quarantined = True
        scan.reason = "torn_interior_segment"
        quarantine.report("torn_interior_segment", file=path, segment=index)
    elif not scan.sealed and not is_last:
        scan.quarantined = True
        scan.reason = "unsealed_interior_segment"
        quarantine.report("unsealed_interior_segment", file=path,
                          segment=index)
    return scan


def scan_journal(journal_dir: Union[str, Path],
                 quarantine: Quarantine) -> JournalScan:
    """Read and verify every segment, quarantining damaged ones.

    The newest segment is allowed to be unsealed and to carry a torn
    trailing line (both are the expected residue of a crash); damage
    anywhere else quarantines the whole segment file.
    """
    journal_dir = Path(journal_dir)
    result = JournalScan()
    files = _segment_files(journal_dir)
    for pos, (index, path) in enumerate(files):
        is_last = pos == len(files) - 1
        seg = _scan_segment(index, path, is_last, quarantine)
        result.segments.append(seg)
        result.last_segment = max(result.last_segment, index)
        if seg.quarantined:
            result.quarantined += 1
            continue
        if seg.torn_tail:
            result.torn_tails += 1
        for rec in seg.records:
            if rec.body.get("kind") == "iter":
                b = rec.body
                result.iteration_digests[int(b["k"])] = (
                    str(b["digest"]), int(b["n"])
                )
    return result


def retro_seal(scan: JournalScan) -> None:
    """Seal the newest segment of a crashed generation in place.

    The surviving (CRC-verified) records are rewritten atomically with a
    proper footer, restoring the "only the newest segment is unsealed"
    invariant before a resumed run opens its own segments.
    """
    if not scan.segments:
        return
    seg = scan.segments[-1]
    if seg.quarantined or seg.sealed:
        return
    lines = []
    crcs = []
    for rec in seg.records:
        line = encode_record(rec.body)
        lines.append(line)
        crcs.append(json.loads(line)["crc"])
    digest = _crc_hex("".join(crcs).encode("ascii"))
    lines.append(encode_record({"kind": "seal", "segment": seg.index,
                                "records": len(crcs) - 1, "digest": digest}))
    tmp = seg.path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write("\n".join(lines) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, seg.path)
    _fsync_dir(seg.path.parent)
    seg.sealed = True


def _fsync_dir(path: Path) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
