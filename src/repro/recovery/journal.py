"""Write-ahead trace journal: append-only, CRC-guarded, segment-rotated.

The journal is the durability half of :mod:`repro.recovery`.  Every
sample the coordinator collects is appended here *before* it is admitted
into the in-memory :class:`~repro.traces.store.TraceStore`, and every
iteration closes with a marker carrying a digest of the iteration's
samples.  A crashed run therefore leaves a byte-exact, checkable record
of everything it had collected.

Format
------
One JSONL file per **segment** (``segment-000001.jsonl`` ...).  Each line
is ``{"crc": "xxxxxxxx", "body": {...}}`` where ``crc`` is the CRC32 (hex)
of the compact, key-sorted JSON encoding of ``body``.  Body kinds:

``head``
    First record of a segment: schema version and segment index.
``sample``
    One collected sample (iteration index + the full field dict).
``iter``
    End-of-iteration marker: iteration index, simulation time, number of
    samples this iteration and the CRC32 digest chained over their record
    CRCs (``digest = crc32(crc_1 || crc_2 || ...)``).
``seal``
    Segment footer: record count and a whole-segment digest.  A sealed
    segment is immutable; only the newest segment may lack a seal.

Read-side policy (crash tolerance)
----------------------------------
Reading never raises on damaged data.  A torn trailing line (the
signature of a crash mid-``write``) is dropped and logged; a segment with
interior CRC damage or a bad seal is moved wholesale into the run's
``quarantine/`` directory and recorded in ``quarantine/ledger.jsonl``
with a machine-readable reason.  Because the simulation re-generates
samples deterministically from the last checkpoint, journal damage costs
verification coverage, never result correctness.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "JournalWriter",
    "JournalRecord",
    "JournalTailReader",
    "Quarantine",
    "SegmentScan",
    "JournalScan",
    "TailAnomaly",
    "encode_record",
    "decode_line",
    "scan_journal",
]

#: Journal schema version (bumped on incompatible format changes).
JOURNAL_VERSION = 1

_SEGMENT_FMT = "segment-{:06d}.jsonl"


def _crc_hex(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def _envelope_crc(line: str) -> str:
    """Extract the recorded CRC of an (already verified) journal line.

    Uses the fixed :func:`encode_record` byte layout when it holds --
    no JSON parse -- and falls back to parsing the envelope otherwise.
    """
    if (
        line.startswith('{"body":')
        and line.endswith('"}')
        and line[-18:-10] == ',"crc":"'
    ):
        return line[-10:-2]
    return json.loads(line)["crc"]


def encode_record(body: dict) -> str:
    """Encode one journal line (compact JSON + CRC32 envelope)."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"crc": _crc_hex(payload.encode("utf-8")), "body": body},
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_line(line: str) -> dict:
    """Decode and CRC-verify one journal line; returns the body.

    Lines written by :func:`encode_record` always have the exact shape
    ``{"body":<compact sorted JSON>,"crc":"xxxxxxxx"}``, so the common
    case is verified by CRC-ing the raw payload slice directly -- one
    JSON parse per record instead of parse + re-encode.  Anything not
    matching that byte layout (hand-edited, reformatted) falls through
    to the generic envelope path with identical semantics.

    Raises
    ------
    JournalError
        On malformed JSON, a missing envelope field, or a CRC mismatch.
    """
    if (
        line.startswith('{"body":')
        and line.endswith('"}')
        and line[-18:-10] == ',"crc":"'
    ):
        payload = line[8:-18]
        if _crc_hex(payload.encode("utf-8")) == line[-10:-2]:
            try:
                return json.loads(payload)
            except json.JSONDecodeError:
                pass  # CRC collision on junk; let the slow path diagnose
    try:
        envelope = json.loads(line)
        crc, body = envelope["crc"], envelope["body"]
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise JournalError(f"unparseable journal line: {exc}") from exc
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    actual = _crc_hex(payload.encode("utf-8"))
    if actual != crc:
        raise JournalError(f"CRC mismatch: recorded {crc}, actual {actual}")
    return body


class Quarantine:
    """The run's corruption sink: a directory plus a reason ledger.

    Damaged artefacts (journal segments, checkpoints, stale temp files)
    are *moved* here -- never deleted, so post-mortems keep the evidence
    -- and each move appends one JSON line to ``ledger.jsonl``.
    """

    LEDGER = "ledger.jsonl"

    def __init__(self, run_dir: Union[str, Path]):
        self.dir = Path(run_dir) / "quarantine"
        #: Ledger entries appended during this process's lifetime.
        self.entries: List[dict] = []

    @property
    def ledger_path(self) -> Path:
        return self.dir / self.LEDGER

    def report(self, reason: str, *, file: Optional[Path] = None,
               **detail: object) -> dict:
        """Record one corruption event; move ``file`` here if given."""
        self.dir.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, object] = {"reason": reason, **detail}
        if file is not None:
            target = self.dir / file.name
            n = 1
            while target.exists():
                target = self.dir / f"{file.name}.{n}"
                n += 1
            os.replace(file, target)
            entry["file"] = file.name
            entry["quarantined_as"] = target.name
        with open(self.ledger_path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self.entries.append(entry)
        return entry

    def read_ledger(self) -> List[dict]:
        """All ledger entries ever written for this run."""
        if not self.ledger_path.exists():
            return []
        out = []
        for line in self.ledger_path.read_text().splitlines():
            line = line.strip()
            if line:
                out.append(json.loads(line))
        return out


class JournalWriter:
    """Appends CRC-guarded records, rotating and sealing segments.

    Parameters
    ----------
    journal_dir:
        Directory holding the segment files (created if missing).
    segment_records:
        Soft rotation threshold: a segment is sealed at the first
        iteration boundary at or past this many records, keeping
        segments aligned with whole iterations.
    start_segment:
        Index of the first segment this writer creates; a resumed run
        continues numbering after the crashed generation's segments.
    fsync:
        Whether seals and closes fsync to disk.  Individual records are
        always flushed to the OS (that *is* the write-ahead guarantee);
        fsync additionally survives power loss, at a syscall cost.
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        *,
        segment_records: int = 4096,
        start_segment: int = 1,
        fsync: bool = True,
    ):
        if segment_records <= 0:
            raise JournalError("segment_records must be positive")
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.segment_records = int(segment_records)
        self.fsync = bool(fsync)
        self.segment = int(start_segment) - 1
        self.records_in_segment = 0
        self.records_total = 0
        self.segments_sealed = 0
        self._fh = None
        self._segment_crcs: List[str] = []

    # ------------------------------------------------------------------
    @property
    def segment_path(self) -> Optional[Path]:
        """Path of the open segment, or ``None`` before the first write."""
        if self._fh is None:
            return None
        return self.dir / _SEGMENT_FMT.format(self.segment)

    def _open_next(self) -> None:
        self.segment += 1
        path = self.dir / _SEGMENT_FMT.format(self.segment)
        if path.exists():
            raise JournalError(f"segment already exists: {path}")
        self._fh = open(path, "w")
        self.records_in_segment = 0
        self._segment_crcs = []
        self._write({"kind": "head", "version": JOURNAL_VERSION,
                     "segment": self.segment})

    def _write(self, body: dict) -> str:
        if self._fh is None:
            self._open_next()
        line = encode_record(body)
        self._fh.write(line + "\n")
        # Flush every record: a sample must reach the OS before it is
        # admitted into the in-memory store (write-ahead discipline).
        self._fh.flush()
        self.records_in_segment += 1
        self.records_total += 1
        crc = _envelope_crc(line)
        self._segment_crcs.append(crc)
        return crc

    # ------------------------------------------------------------------
    # record kinds
    # ------------------------------------------------------------------
    def sample(self, iteration: int, data: dict) -> str:
        """Journal one collected sample; returns its record CRC."""
        return self._write({"kind": "sample", "k": iteration, "data": data})

    def iteration_end(self, iteration: int, t: float, n_samples: int,
                      digest: str, *, ran: bool = True) -> None:
        """Close iteration ``iteration``; rotate the segment if due.

        ``ran`` records whether the coordinator actually executed the
        probing pass (``False`` for iterations lost to the availability
        draw or an injected outage).  Live replay needs the distinction
        to reproduce the batch denominators -- a lost iteration and a
        run-but-empty iteration both journal ``n == 0``.
        """
        self._write({"kind": "iter", "k": iteration, "t": t,
                     "n": n_samples, "digest": digest, "ran": bool(ran)})
        if self.records_in_segment >= self.segment_records:
            self.seal()

    def seal(self) -> None:
        """Append the segment footer, fsync and close the segment."""
        if self._fh is None:
            return
        digest = _crc_hex("".join(self._segment_crcs).encode("ascii"))
        # The seal covers every record before it, itself excluded.
        self._write({"kind": "seal", "segment": self.segment,
                     "records": self.records_in_segment - 1,
                     "digest": digest})
        self._close(sync=self.fsync)
        self.segments_sealed += 1

    def _close(self, *, sync: bool) -> None:
        fh, self._fh = self._fh, None
        if fh is None:
            return
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        fh.close()
        if sync:
            _fsync_dir(self.dir)

    def abort(self) -> None:
        """Close the raw handle without sealing (crash emulation path)."""
        self._close(sync=False)

    def close(self) -> None:
        """Seal the open segment and stop writing."""
        self.seal()

    # Torn-write emulation used by the crash-injection harness: a real
    # crash can leave a half-written line at the tail of the newest
    # segment; this writes one deliberately.
    def tear(self, fragment: str = '{"crc":"dead') -> None:
        if self._fh is None:
            self._open_next()
        self._fh.write(fragment)
        self._fh.flush()
        self._close(sync=False)


# ----------------------------------------------------------------------
# read side
# ----------------------------------------------------------------------
@dataclass
class JournalRecord:
    """One decoded journal record plus its provenance."""

    segment: int
    line_no: int
    body: dict


@dataclass
class SegmentScan:
    """Read-side summary of one segment file."""

    index: int
    path: Path
    records: List[JournalRecord] = field(default_factory=list)
    sealed: bool = False
    torn_tail: bool = False
    quarantined: bool = False
    reason: Optional[str] = None


@dataclass
class JournalScan:
    """Result of :func:`scan_journal` over a whole journal directory."""

    segments: List[SegmentScan] = field(default_factory=list)
    #: Per-iteration ``(digest, n_samples)`` from surviving ``iter`` records.
    iteration_digests: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    #: Highest segment index seen on disk (0 when the journal is empty).
    last_segment: int = 0
    #: Segments moved to quarantine during this scan.
    quarantined: int = 0
    torn_tails: int = 0

    def records(self) -> Iterator[JournalRecord]:
        """All surviving records, in segment then line order."""
        for seg in self.segments:
            if not seg.quarantined:
                yield from seg.records

    @property
    def next_segment(self) -> int:
        """Index a new writer generation should start at."""
        return self.last_segment + 1


def _segment_files(journal_dir: Path) -> List[Tuple[int, Path]]:
    out = []
    if not journal_dir.is_dir():
        return out
    for path in sorted(journal_dir.glob("segment-*.jsonl")):
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        out.append((index, path))
    out.sort()
    return out


def _read_complete_lines(path: Path, offset: int) -> Tuple[List[str], int, bytes]:
    """Read newline-terminated lines from byte ``offset`` onward.

    Returns ``(lines, new_offset, partial)``: the decoded complete lines
    (without their newlines), the byte offset just past the last complete
    line, and the raw bytes of any trailing un-terminated fragment.  The
    fragment is *not* consumed -- a follow-mode reader re-reads from
    ``new_offset`` on its next poll, by which time the writer's flush has
    usually completed the line.  Splitting happens on the byte level
    (UTF-8 never embeds ``0x0A`` in a multi-byte sequence), so a partial
    multi-byte character at the tail cannot corrupt the decode.
    """
    with open(path, "rb") as fh:
        fh.seek(offset)
        chunk = fh.read()
    nl = chunk.rfind(b"\n")
    if nl < 0:
        return [], offset, chunk
    complete = chunk[: nl + 1]
    lines = complete.decode("utf-8", errors="replace").split("\n")[:-1]
    return lines, offset + nl + 1, chunk[nl + 1:]


def _scan_segment(index: int, path: Path, is_last: bool,
                  quarantine: Quarantine) -> SegmentScan:
    scan = SegmentScan(index=index, path=path)
    # One pass from offset 0: the batch scan is just the degenerate case
    # of the incremental reader.  Anything after the final newline is a
    # torn trailing write.
    lines, _, partial = _read_complete_lines(path, 0)
    trailing = partial.decode("utf-8", errors="replace")
    crcs: List[str] = []
    for line_no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            body = decode_line(line)
        except JournalError as exc:
            if is_last and line_no == len(lines) and not trailing:
                # Damage limited to the final complete-looking line of
                # the newest segment: treat as a torn tail, keep prefix.
                scan.torn_tail = True
                quarantine.report(
                    "torn_tail", segment=index, line=line_no,
                    detail=str(exc), action="dropped",
                )
                break
            scan.quarantined = True
            scan.reason = f"crc_mismatch at line {line_no}: {exc}"
            quarantine.report(
                "crc_mismatch", file=path, segment=index, line=line_no,
                detail=str(exc),
            )
            return scan
        if body.get("kind") == "seal":
            expected = _crc_hex("".join(crcs).encode("ascii"))
            if (body.get("records") != len(crcs) - 1
                    or body.get("digest") != expected):
                scan.quarantined = True
                scan.reason = "bad_seal"
                quarantine.report(
                    "bad_seal", file=path, segment=index, line=line_no,
                    recorded=body.get("digest"), actual=expected,
                )
                return scan
            scan.sealed = True
        else:
            scan.records.append(JournalRecord(index, line_no, body))
        crcs.append(_envelope_crc(line))
    if trailing.strip():
        scan.torn_tail = True
        quarantine.report(
            "torn_tail", segment=index, line=len(lines) + 1,
            detail=f"{len(trailing)} bytes without newline", action="dropped",
        )
    if scan.torn_tail and not is_last:
        # Torn writes can only happen at the journal's true tail; a torn
        # interior segment means out-of-order damage.
        scan.quarantined = True
        scan.reason = "torn_interior_segment"
        quarantine.report("torn_interior_segment", file=path, segment=index)
    elif not scan.sealed and not is_last:
        scan.quarantined = True
        scan.reason = "unsealed_interior_segment"
        quarantine.report("unsealed_interior_segment", file=path,
                          segment=index)
    return scan


def scan_journal(journal_dir: Union[str, Path],
                 quarantine: Quarantine) -> JournalScan:
    """Read and verify every segment, quarantining damaged ones.

    The newest segment is allowed to be unsealed and to carry a torn
    trailing line (both are the expected residue of a crash); damage
    anywhere else quarantines the whole segment file.
    """
    journal_dir = Path(journal_dir)
    result = JournalScan()
    files = _segment_files(journal_dir)
    for pos, (index, path) in enumerate(files):
        is_last = pos == len(files) - 1
        seg = _scan_segment(index, path, is_last, quarantine)
        result.segments.append(seg)
        result.last_segment = max(result.last_segment, index)
        if seg.quarantined:
            result.quarantined += 1
            continue
        if seg.torn_tail:
            result.torn_tails += 1
        for rec in seg.records:
            if rec.body.get("kind") == "iter":
                b = rec.body
                result.iteration_digests[int(b["k"])] = (
                    str(b["digest"]), int(b["n"])
                )
    return result


def retro_seal(scan: JournalScan) -> None:
    """Seal the newest segment of a crashed generation in place.

    The surviving (CRC-verified) records are rewritten atomically with a
    proper footer, restoring the "only the newest segment is unsealed"
    invariant before a resumed run opens its own segments.
    """
    if not scan.segments:
        return
    seg = scan.segments[-1]
    if seg.quarantined or seg.sealed:
        return
    lines = []
    crcs = []
    for rec in seg.records:
        line = encode_record(rec.body)
        lines.append(line)
        crcs.append(_envelope_crc(line))
    digest = _crc_hex("".join(crcs).encode("ascii"))
    lines.append(encode_record({"kind": "seal", "segment": seg.index,
                                "records": len(crcs) - 1, "digest": digest}))
    tmp = seg.path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write("\n".join(lines) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, seg.path)
    _fsync_dir(seg.path.parent)
    seg.sealed = True


# ----------------------------------------------------------------------
# follow-mode (tail) reading
# ----------------------------------------------------------------------
@dataclass
class TailAnomaly:
    """One damage event observed by a :class:`JournalTailReader`.

    Unlike the batch scan's :class:`Quarantine`, tail anomalies are
    recorded in memory only -- the reader never moves or rewrites files,
    because the writer may still own them.
    """

    reason: str
    segment: int
    line: Optional[int] = None
    detail: str = ""


class JournalTailReader:
    """Incremental follow-mode reader over a (possibly live) journal.

    Where :func:`scan_journal` loads whole segments and quarantines
    damage, this reader resumes from a saved ``(segment, byte offset)``
    position on every :meth:`poll` and reads only newly appended
    complete lines.  It is the ingestion side of ``repro.live``: the
    writer appends ``line + "\\n"`` and flushes, so a line without its
    terminating newline is simply *pending* -- the reader leaves it
    unconsumed and picks it up once the flush lands.

    Differences from the batch scan, by design:

    - **Non-destructive.**  Damage is recorded as :class:`TailAnomaly`
      entries; no file is ever moved to quarantine.
    - **Prefix-optimistic.**  Records are handed out as soon as their
      line CRC verifies.  If interior damage appears later in the same
      segment, the earlier records have already been consumed; the
      batch scan would have quarantined the whole file.  (The live
      rollups favour freshness; the differential replay test pins the
      two paths to identical output on undamaged journals.)
    - A bad complete line makes the reader skip the *rest* of that
      segment and wait for the next one, mirroring the batch policy of
      not trusting anything after the first corruption.

    ``poll`` returns decoded records in order (``head``/``sample``/
    ``iter``; seal records are verified and swallowed, as in
    :meth:`JournalScan.records`).  An empty list means no complete new
    data -- the caller decides whether the writer is merely idle or the
    journal is finished.
    """

    def __init__(self, journal_dir: Union[str, Path],
                 *, start_segment: Optional[int] = None):
        self.dir = Path(journal_dir)
        self._segment: Optional[int] = (
            None if start_segment is None else int(start_segment)
        )
        self._offset = 0
        self._line_no = 0
        self._crcs: List[str] = []
        #: Current segment fully consumed (sealed) or written off (damage).
        self._done = False
        self.anomalies: List[TailAnomaly] = []
        self.records_read = 0
        self.segments_finished = 0
        self.seals_verified = 0

    # ------------------------------------------------------------------
    @property
    def position(self) -> Tuple[Optional[int], int]:
        """Current ``(segment index, byte offset)`` read position."""
        return self._segment, self._offset

    def _note(self, reason: str, *, line: Optional[int] = None,
              detail: str = "") -> None:
        self.anomalies.append(TailAnomaly(
            reason=reason, segment=self._segment if self._segment else 0,
            line=line, detail=detail,
        ))

    def _next_index(self) -> Optional[int]:
        """Lowest on-disk segment index after the current one, if any."""
        for index, _path in _segment_files(self.dir):
            if self._segment is None or index > self._segment:
                return index
        return None

    def _enter(self, index: int) -> None:
        if self._segment is not None:
            self.segments_finished += 1
        self._segment = index
        self._offset = 0
        self._line_no = 0
        self._crcs = []
        self._done = False

    # ------------------------------------------------------------------
    def poll(self) -> List[JournalRecord]:
        """Consume and return all newly readable records."""
        out: List[JournalRecord] = []
        while True:
            if self._segment is None:
                nxt = self._next_index()
                if nxt is None:
                    return out
                self._segment = nxt  # first segment: no finish to count
            if self._done:
                nxt = self._next_index()
                if nxt is None:
                    return out
                self._enter(nxt)
                continue
            path = self.dir / _SEGMENT_FMT.format(self._segment)
            if not path.exists():
                # Moved underneath us (e.g. a concurrent batch scan
                # quarantined it).  Skip forward if the journal goes on.
                nxt = self._next_index()
                if nxt is None:
                    return out
                self._note("segment_vanished",
                           detail="file disappeared mid-read")
                self._enter(nxt)
                continue
            lines, self._offset, partial = _read_complete_lines(
                path, self._offset
            )
            for pos, raw in enumerate(lines):
                self._line_no += 1
                self._consume(raw, out)
                if self._done:
                    leftovers = [l for l in lines[pos + 1:] if l.strip()]
                    if leftovers:
                        self._note("records_after_done",
                                   line=self._line_no + 1,
                                   detail=f"{len(leftovers)} lines dropped")
                    break
            if self._done:
                continue
            if partial and self._next_index() is not None:
                # An un-terminated tail can only complete while its
                # segment is the newest; once the writer has moved on it
                # is permanent torn garbage (crash residue).
                self._note("torn_tail", line=self._line_no + 1,
                           detail=f"{len(partial)} bytes without newline")
                self._done = True
                continue
            if not lines:
                return out
            # Lines were consumed: loop once more in case the writer
            # appended while we parsed.

    def _consume(self, raw: str, out: List[JournalRecord]) -> None:
        if not raw.strip():
            return
        try:
            body = decode_line(raw)
        except JournalError as exc:
            # A complete-but-unverifiable line is corruption, not an
            # in-flight write: the writer emits line + newline in one
            # buffered write, so a flushed newline proves the line was
            # fully staged.  Skip the rest of this segment.
            self._note("crc_mismatch", line=self._line_no, detail=str(exc))
            self._done = True
            return
        if body.get("kind") == "seal":
            expected = _crc_hex("".join(self._crcs).encode("ascii"))
            if (body.get("records") != len(self._crcs) - 1
                    or body.get("digest") != expected):
                self._note(
                    "bad_seal", line=self._line_no,
                    detail=(f"recorded {body.get('digest')}, "
                            f"actual {expected}"),
                )
            else:
                self.seals_verified += 1
            self._done = True
            return
        self._crcs.append(_envelope_crc(raw))
        self.records_read += 1
        out.append(JournalRecord(self._segment, self._line_no, body))


def _fsync_dir(path: Path) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
