"""Campaign manifest: the shared control-plane record of a sharded run.

A *campaign* is a crash-safe run collected by ``shards > 1`` supervised
workers.  Its run directory holds one ``shard-<k>/`` recovery tree per
shard (journal + checkpoints + quarantine, laid out exactly like a
sequential run directory) plus two campaign-level artefacts:

``manifest.json``
    Small, human-readable, atomically-rewritten JSON describing the
    campaign: config digest, shard count, the :class:`~repro.shard.plan
    .ShardPlan` (lab names and machine counts per shard), per-shard
    status (state, restarts burned, last iteration reported, journal
    digest once the shard completes) and the **merge watermark** -- the
    lowest iteration every shard has durably journaled, i.e. how far a
    merged partial trace could reach.

``campaign.pkl``
    The pickled inputs a cold-restarted shard worker needs but cannot
    recover from its (possibly absent) checkpoints: the experiment
    config, the lab catalog, the pristine pre-run fault plan, and the
    collection flags.  Written once at campaign start, read by
    ``resume_from=``.

The manifest is advisory bookkeeping for operators and the resume path;
per-shard durability lives entirely in the shards' own journals and
checkpoints, so a torn manifest never loses data -- resume rebuilds the
status columns from the shard directories.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import CheckpointError
from repro.recovery.journal import _fsync_dir
from repro.recovery.runtime import shard_dir

__all__ = [
    "MANIFEST_NAME",
    "CAMPAIGN_STATE_NAME",
    "MANIFEST_VERSION",
    "ShardStatus",
    "CampaignManifest",
    "is_campaign_dir",
    "journal_digest",
    "write_campaign_state",
    "load_campaign_state",
]

MANIFEST_NAME = "manifest.json"
CAMPAIGN_STATE_NAME = "campaign.pkl"

#: Manifest schema version (bumped on incompatible changes).
MANIFEST_VERSION = 1


@dataclass
class ShardStatus:
    """One shard's row in the campaign manifest."""

    index: int
    dir: str
    #: Supervisor-observed worker state (``repro.obs.health`` vocabulary)
    #: or ``"pending"`` before the first launch.
    state: str = "pending"
    restarts: int = 0
    #: Last iteration the worker reported complete (heartbeats), or -1.
    last_iteration: int = -1
    #: Digest of the shard's sealed journal, recorded at completion.
    journal_digest: Optional[str] = None
    completed: bool = False
    #: Networked campaigns: worker identity currently holding (or last
    #: to hold) this shard's lease, and the lease epoch it was granted
    #: under.  ``None`` / 0 on local supervised campaigns.
    worker: Optional[str] = None
    lease_epoch: int = 0


@dataclass
class CampaignManifest:
    """The campaign-level control record (see module docstring)."""

    config_digest: str
    n_shards: int
    #: One ``{"index", "labs", "n_machines"}`` entry per shard, pinning
    #: the plan so a resume under a drifted lab catalog fails loudly.
    plan: List[dict]
    shards: Dict[int, ShardStatus]
    #: ``min`` over shards of the last durably journaled iteration.
    merge_watermark: int = -1
    #: Campaign lifecycle: running -> merged | stopped | failed
    #: (networked campaigns add the terminal ``degraded``).
    state: str = "running"
    version: int = MANIFEST_VERSION
    #: Degraded merge: the campaign completed without these shards --
    #: their lease regrant budgets were exhausted -- and the merged
    #: artefacts cover only the surviving shards' machines.  ``partial``
    #: is the explicit flag consumers must check before treating the
    #: output as roster-complete.
    partial: bool = False
    lost_shards: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, run_dir: Union[str, Path], *, config_digest: str,
              plan) -> "CampaignManifest":
        """Manifest for a brand-new campaign over ``plan``'s shards."""
        rows = [
            {"index": spec.index, "labs": list(spec.labs),
             "n_machines": spec.n_machines}
            for spec in plan.specs
        ]
        shards = {
            spec.index: ShardStatus(
                index=spec.index,
                dir=shard_dir(run_dir, spec.index).name,
            )
            for spec in plan.specs
        }
        return cls(config_digest=config_digest, n_shards=len(plan.specs),
                   plan=rows, shards=shards)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "config_digest": self.config_digest,
            "n_shards": self.n_shards,
            "state": self.state,
            "merge_watermark": self.merge_watermark,
            "partial": self.partial,
            "lost_shards": sorted(self.lost_shards),
            "plan": self.plan,
            "shards": {str(k): asdict(v)
                       for k, v in sorted(self.shards.items())},
        }

    def write(self, run_dir: Union[str, Path]) -> Path:
        """Atomically rewrite the manifest under ``run_dir``."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        blob = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(run_dir)
        return path

    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "CampaignManifest":
        """Load and validate ``run_dir``'s manifest.

        Raises :class:`~repro.errors.CheckpointError` when the file is
        missing, unreadable or schema-incompatible -- resuming a
        campaign the manifest cannot describe would silently diverge.
        """
        path = Path(run_dir) / MANIFEST_NAME
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(
                f"{run_dir} holds no campaign manifest ({MANIFEST_NAME}); "
                "it is not a sharded campaign directory"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"campaign manifest {path} is unreadable: {exc}"
            ) from exc
        try:
            version = int(raw["version"])
            if version != MANIFEST_VERSION:
                raise CheckpointError(
                    f"campaign manifest {path} has version {version}; "
                    f"this build reads version {MANIFEST_VERSION}"
                )
            shards = {
                int(k): ShardStatus(**v)
                for k, v in raw["shards"].items()
            }
            return cls(config_digest=raw["config_digest"],
                       n_shards=int(raw["n_shards"]),
                       plan=list(raw["plan"]),
                       shards=shards,
                       merge_watermark=int(raw["merge_watermark"]),
                       state=raw["state"],
                       version=version,
                       # Pre-networked manifests lack the degraded-merge
                       # columns; absent means roster-complete.
                       partial=bool(raw.get("partial", False)),
                       lost_shards=[int(k)
                                    for k in raw.get("lost_shards", [])])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"campaign manifest {path} does not conform to the "
                f"schema: {exc!r}"
            ) from exc

    # ------------------------------------------------------------------
    def verify_plan(self, plan) -> None:
        """Check a rebuilt :class:`ShardPlan` matches the recorded one.

        A campaign resumed under a different lab catalog (or shard
        count) would re-partition machines across shards and silently
        diverge from every shard's journal; refuse instead.
        """
        rebuilt = [
            {"index": spec.index, "labs": list(spec.labs),
             "n_machines": spec.n_machines}
            for spec in plan.specs
        ]
        if rebuilt != self.plan:
            raise CheckpointError(
                "the rebuilt shard plan does not match the campaign "
                "manifest's: the lab catalog or shard count changed "
                "between crash and resume"
            )

    def refresh_watermark(self) -> int:
        """Recompute the merge watermark from the per-shard statuses."""
        if self.shards:
            self.merge_watermark = min(
                s.last_iteration for s in self.shards.values()
            )
        return self.merge_watermark


def is_campaign_dir(run_dir: Union[str, Path]) -> bool:
    """Whether ``run_dir`` holds a campaign manifest."""
    return (Path(run_dir) / MANIFEST_NAME).is_file()


def journal_digest(journal_dir: Union[str, Path]) -> Optional[str]:
    """Content digest of a shard's journal segment chain.

    SHA-256 over the raw bytes of every ``segment-*.jsonl`` in order,
    truncated to 16 hex chars; ``None`` when there is no journal.  The
    supervisor records it in the manifest when a shard completes, so an
    operator can later prove which journal generation a merged trace
    came from.
    """
    journal_dir = Path(journal_dir)
    segments = sorted(journal_dir.glob("segment-*.jsonl"))
    if not segments:
        return None
    h = hashlib.sha256()
    for path in segments:
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


def write_campaign_state(
    run_dir: Union[str, Path],
    *,
    config,
    labs: Sequence,
    faults,
    collect_nbench: bool,
    strict_postcollect: bool,
    instrument: bool,
) -> Path:
    """Pickle the cold-restart inputs next to the manifest (see module
    docstring); written once at campaign start."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / CAMPAIGN_STATE_NAME
    tmp = path.with_suffix(".pkl.tmp")
    state = {
        "config": config,
        "labs": tuple(labs),
        "faults": faults,
        "collect_nbench": collect_nbench,
        "strict_postcollect": strict_postcollect,
        "instrument": instrument,
    }
    with open(tmp, "wb") as fh:
        pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(run_dir)
    return path


def load_campaign_state(run_dir: Union[str, Path]) -> dict:
    """Load the campaign's pickled cold-restart inputs."""
    path = Path(run_dir) / CAMPAIGN_STATE_NAME
    try:
        with open(path, "rb") as fh:
            state = pickle.load(fh)
    except FileNotFoundError:
        raise CheckpointError(
            f"{run_dir} holds no {CAMPAIGN_STATE_NAME}; the campaign "
            "cannot be resumed without its pickled run inputs"
        ) from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as exc:
        raise CheckpointError(
            f"campaign state {path} is unreadable: {exc!r}"
        ) from exc
    required = {"config", "labs", "faults", "collect_nbench",
                "strict_postcollect", "instrument"}
    missing = required - state.keys()
    if missing:
        raise CheckpointError(
            f"campaign state {path} is missing keys: {sorted(missing)}"
        )
    return state
