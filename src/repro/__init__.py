"""repro -- reproduction of *Resource Usage of Windows Computer
Laboratories* (Domingues, Marques & Silva, ICPP 2005).

The package rebuilds the paper's entire system in Python:

- a discrete-event **fleet simulator** of 11 classroom labs / 169 Windows
  2000 machines (:mod:`repro.sim`, :mod:`repro.machines`),
- the **DDC** remote-probing framework with the W32Probe and NBench
  probes (:mod:`repro.ddc`),
- the **NBench** benchmark suite and index model (:mod:`repro.nbench`),
- trace storage (:mod:`repro.traces`) and the complete **analysis
  pipeline** regenerating every table and figure (:mod:`repro.analysis`),
- comparison **baselines** (:mod:`repro.baselines`) and an idle-cycle
  **harvesting simulator** validating the 2:1 equivalence rule
  (:mod:`repro.harvest`).

Quickstart
----------
>>> from repro import run_experiment, ExperimentConfig
>>> result = run_experiment(ExperimentConfig(days=2, seed=42))
>>> len(result.store) > 0
True

See ``examples/quickstart.py`` for the guided tour and ``EXPERIMENTS.md``
for the paper-vs-measured record.
"""

from repro.config import (
    BehaviorParams,
    DdcParams,
    ExperimentConfig,
    PowerParams,
    SmartParams,
    WorkloadParams,
    paper_config,
)
from repro.experiment import MonitoringResult, run_experiment, run_paper_experiment
from repro.faults import FaultPlan, FaultScenario
from repro.obs import NullObserver, Observer, ObsSnapshot
from repro.recovery import RecoveryConfig, RecoveryInfo
from repro.resilience import ResiliencePolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ExperimentConfig",
    "BehaviorParams",
    "PowerParams",
    "WorkloadParams",
    "DdcParams",
    "SmartParams",
    "paper_config",
    "run_experiment",
    "run_paper_experiment",
    "MonitoringResult",
    "FaultPlan",
    "FaultScenario",
    "Observer",
    "NullObserver",
    "ObsSnapshot",
    "RecoveryConfig",
    "RecoveryInfo",
    "ResiliencePolicy",
]
