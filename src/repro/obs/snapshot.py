"""Frozen snapshot of an observed run, with JSONL interchange.

An :class:`ObsSnapshot` is the portable artefact of an instrumented run:
every metric row, every recorded span, the sampled event stream and the
buffer-overflow accounting, detached from the live registry so it can be
serialized, shipped (e.g. as a CI artifact) and re-analysed offline by
``repro obs`` or :mod:`repro.report.obs`.

JSONL layout: the first line is a ``meta`` header, then one object per
record, each tagged with ``kind`` (``counter`` / ``gauge`` /
``histogram`` / ``span`` / ``event``).  The format round-trips exactly
(``tests/obs`` enforces it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

from repro.errors import SnapshotFormatError

__all__ = ["ObsSnapshot", "SNAPSHOT_FORMAT_VERSION"]

#: Bumped whenever the JSONL schema changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1

_METRIC_KINDS = ("counter", "gauge", "histogram")


@dataclass
class ObsSnapshot:
    """Immutable-by-convention dump of one run's observability state.

    Attributes
    ----------
    metrics:
        Rows from :meth:`repro.obs.metrics.MetricsRegistry.rows` --
        dicts with ``kind``/``name``/``labels`` plus kind-specific data.
    spans:
        Finished spans as dicts (``name``, ``start``, ``end``, ``depth``,
        ``seq``, ``labels``).
    events:
        Sampled engine events as dicts (``time``, ``seq``, ``name``).
    spans_dropped / events_dropped:
        Records lost to the bounded buffers (0 means complete capture).
    events_seen / event_sample_every:
        Total fired events offered to the sampler and its stride.
    """

    metrics: List[dict] = field(default_factory=list)
    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    spans_dropped: int = 0
    events_dropped: int = 0
    events_seen: int = 0
    event_sample_every: int = 1

    # ------------------------------------------------------------------
    # queries (used by the report renderer and the CLI)
    # ------------------------------------------------------------------
    def _rows(self, kind: str, name: str) -> List[dict]:
        return [r for r in self.metrics if r["kind"] == kind and r["name"] == name]

    def counter_total(self, name: str) -> int:
        """Sum of a counter over every label set (0 when absent)."""
        return sum(r["value"] for r in self._rows("counter", name))

    def counter_by_label(self, name: str, label: str) -> Dict[str, int]:
        """``{label value: count}`` for one counter, summing other labels."""
        out: Dict[str, int] = {}
        for r in self._rows("counter", name):
            key = r["labels"].get(label, "")
            out[key] = out.get(key, 0) + r["value"]
        return out

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """A gauge's value, or ``None`` if never written."""
        want = {k: str(v) for k, v in labels.items()}
        for r in self._rows("gauge", name):
            if r["labels"] == want:
                return r["value"]
        return None

    def histograms(self, name: str) -> List[dict]:
        """All histogram rows for ``name`` (one per label set)."""
        return self._rows("histogram", name)

    def metric_names(self) -> List[str]:
        """Sorted distinct metric names present in the snapshot."""
        return sorted({r["name"] for r in self.metrics})

    def span_durations(self, name: str) -> List[float]:
        """Durations of every recorded span called ``name``."""
        return [s["end"] - s["start"] for s in self.spans if s["name"] == name]

    # ------------------------------------------------------------------
    # shard merge
    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls,
        snapshots: "Sequence[ObsSnapshot]",
        *,
        sum_metrics: FrozenSet[str] = frozenset(),
        max_gauges: FrozenSet[str] = frozenset(),
    ) -> "ObsSnapshot":
        """Combine per-shard snapshots into one.

        The caller classifies metrics by name (the snapshot layer knows
        nothing about which subsystems replicate across shards):

        - ``sum_metrics`` -- counters and histograms owned piecewise by
          the shards (each shard observed a disjoint slice of the fleet);
          counter values, histogram bucket counts and totals are summed
          per ``(name, labels)`` row.
        - ``max_gauges`` -- per-shard wall-clock gauges (phase timings);
          the merged value is the maximum, i.e. the parallel critical
          path.
        - everything else is **replicated**: every shard computed the
          identical value (full-fleet simulation, shared seed), so the
          first shard's row is taken verbatim.  Spans, events and the
          drop accounting follow the same rule.
        """
        if not snapshots:
            raise SnapshotFormatError("cannot merge zero snapshots")
        first = snapshots[0]
        merged: Dict[tuple, dict] = {}
        for snap in snapshots:
            for row in snap.metrics:
                key = (row["kind"], row["name"],
                       tuple(sorted(row["labels"].items())))
                have = merged.get(key)
                if have is None:
                    merged[key] = {k: (list(v) if isinstance(v, list) else v)
                                   for k, v in row.items()}
                elif row["name"] in sum_metrics:
                    if row["kind"] == "histogram":
                        have["counts"] = [a + b for a, b in
                                          zip(have["counts"], row["counts"])]
                        have["count"] += row["count"]
                        have["total"] += row["total"]
                        for agg, fn in (("min", min), ("max", max)):
                            if row[agg] is not None:
                                have[agg] = (row[agg] if have[agg] is None
                                             else fn(have[agg], row[agg]))
                    else:
                        have["value"] += row["value"]
                elif (row["kind"] == "gauge"
                      and row["name"] in max_gauges):
                    have["value"] = max(have["value"], row["value"])
        rows = sorted(merged.values(),
                      key=lambda r: (r["name"], sorted(r["labels"].items())))
        return cls(
            metrics=rows,
            spans=list(first.spans),
            events=list(first.events),
            spans_dropped=first.spans_dropped,
            events_dropped=first.events_dropped,
            events_seen=first.events_seen,
            event_sample_every=first.event_sample_every,
        )

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------
    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the snapshot as kind-tagged JSONL with a meta header."""
        header = {
            "kind": "meta",
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "spans_dropped": self.spans_dropped,
            "events_dropped": self.events_dropped,
            "events_seen": self.events_seen,
            "event_sample_every": self.event_sample_every,
        }
        with open(path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            for row in self.metrics:
                fh.write(json.dumps(row) + "\n")
            for span in self.spans:
                fh.write(json.dumps({"kind": "span", **span}) + "\n")
            for event in self.events:
                fh.write(json.dumps({"kind": "event", **event}) + "\n")

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "ObsSnapshot":
        """Read a snapshot written by :meth:`write_jsonl`."""
        snap = cls()
        saw_meta = False
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SnapshotFormatError(
                        f"{path}:{line_no}: bad JSON") from exc
                kind = row.get("kind")
                if kind == "meta":
                    if row.get("format_version") != SNAPSHOT_FORMAT_VERSION:
                        raise SnapshotFormatError(
                            f"{path}: unsupported snapshot format "
                            f"{row.get('format_version')!r}"
                        )
                    snap.spans_dropped = int(row.get("spans_dropped", 0))
                    snap.events_dropped = int(row.get("events_dropped", 0))
                    snap.events_seen = int(row.get("events_seen", 0))
                    snap.event_sample_every = int(
                        row.get("event_sample_every", 1))
                    saw_meta = True
                elif kind in _METRIC_KINDS:
                    snap.metrics.append(row)
                elif kind == "span":
                    row.pop("kind")
                    snap.spans.append(row)
                elif kind == "event":
                    row.pop("kind")
                    snap.events.append(row)
                else:
                    raise SnapshotFormatError(
                        f"{path}:{line_no}: unknown record kind {kind!r}")
        if not saw_meta:
            raise SnapshotFormatError(f"{path}: missing snapshot meta header")
        return snap
