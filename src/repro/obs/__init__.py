"""repro.obs -- tracing, metrics and profiling for the reproduction.

The paper's conclusions rest on operational telemetry about the
collection infrastructure itself (6,883 of 7,392 attempted iterations,
45-55% per-iteration response rates); this package gives the
reproduction the same kind of first-class self-observation:

- :class:`MetricsRegistry` -- counters, gauges and fixed-bucket
  histograms keyed by ``(name, labels)``;
- simulation-time spans with a bounded buffer, plus sampling of the
  engine's fired :class:`~repro.sim.engine.Event` records;
- :class:`Observer` / :class:`NullObserver` -- the facade threaded
  through ``run_experiment`` into every instrumented layer;
- :class:`ObsSnapshot` -- the frozen, JSONL-round-trippable artefact
  consumed by ``repro obs`` and :mod:`repro.report.obs`.

Differential guarantee: with no observer (or a :class:`NullObserver`)
the instrumented layers drop the reference at construction, run
hook-free, and produce bitwise-identical traces to pre-observability
builds.  See ``docs/observability.md`` for the metric catalogue.
"""

from repro.obs.health import (
    WORKER_STATES,
    record_worker_heartbeat,
    record_worker_restart,
    record_worker_state,
    worker_state_code,
)
from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    geometric_buckets,
)
from repro.obs.observer import NullObserver, Observer, maybe_phase
from repro.obs.snapshot import SNAPSHOT_FORMAT_VERSION, ObsSnapshot
from repro.obs.spans import Span, SpanRecord, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_buckets",
    "DURATION_BUCKETS",
    "LATENCY_BUCKETS",
    "Observer",
    "NullObserver",
    "maybe_phase",
    "ObsSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "WORKER_STATES",
    "record_worker_heartbeat",
    "record_worker_restart",
    "record_worker_state",
    "worker_state_code",
]
