"""The observer facade the instrumented layers talk to.

One :class:`Observer` travels through ``run_experiment`` into every
layer (engine, DDC, fleet); each layer resolves the instruments it needs
from :attr:`Observer.metrics` and opens spans via :meth:`Observer.span`.
The default is :data:`NULL_OBSERVER` semantics: consumers apply the same
drop-at-construction pattern the fault plan uses ::

    self._obs = observer if observer is not None and observer.enabled else None

so an uninstrumented run carries **no** hook in the hot path and stays
bitwise-identical to pre-observability behaviour (the differential test
in ``tests/obs`` enforces this, mirroring the fault layer's guarantee).
The observer never consumes experiment RNG streams, so even a fully
instrumented run leaves the trace bytes untouched.

Clocks: spans run on the **simulation** clock (bind it with
:meth:`bind_clock` once the :class:`~repro.sim.engine.Simulator`
exists); :meth:`phase` timings are **wall-clock** because they measure
the reproduction pipeline itself (simulate / collect / columnarise /
analyse), not simulated time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import ObsSnapshot
from repro.obs.spans import Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Event, Simulator

__all__ = ["Observer", "NullObserver", "maybe_phase"]


def _unbound_clock() -> float:
    """Span clock before a simulator is bound (module-level: picklable)."""
    return 0.0


class _SimClock:
    """Picklable callable reading a simulator's clock.

    A plain ``lambda: sim.now`` would work but cannot be pickled, and
    observers ride inside experiment checkpoints (:mod:`repro.recovery`).
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now


class Observer:
    """Live metrics registry + span recorder for one run.

    Parameters
    ----------
    max_spans / max_events / event_sample_every:
        Buffer bounds forwarded to :class:`~repro.obs.spans.SpanRecorder`.
    clock:
        Span clock override; defaults to ``0.0`` until :meth:`bind_clock`
        attaches a simulator.
    """

    enabled = True

    def __init__(
        self,
        *,
        max_spans: int = 100_000,
        max_events: int = 4096,
        event_sample_every: int = 64,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.metrics = MetricsRegistry()
        self._clock: Callable[[], float] = clock or _unbound_clock
        self.spans = SpanRecorder(
            self.now,
            max_spans=max_spans,
            max_events=max_events,
            event_sample_every=event_sample_every,
        )

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current span-clock reading (simulation seconds once bound)."""
        return self._clock()

    def bind_clock(self, sim: "Simulator") -> None:
        """Drive spans off ``sim``'s clock from now on."""
        self._clock = _SimClock(sim)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: object) -> Span:
        """A new simulation-time span (use as a context manager)."""
        return self.spans.span(name, **labels)

    def record_event(self, event: "Event") -> None:
        """Offer one fired engine event to the sampler."""
        self.spans.record_event(event)

    def phase(self, name: str):
        """Context manager timing one pipeline phase in wall-clock seconds.

        The duration lands in the ``experiment.phase_seconds{phase=name}``
        gauge (last write wins if a phase runs twice).
        """
        gauge = self.metrics.gauge("experiment.phase_seconds", phase=name)

        @contextmanager
        def _timer() -> Iterator[None]:
            t0 = time.perf_counter()
            try:
                yield
            finally:
                gauge.set(time.perf_counter() - t0)

        return _timer()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> ObsSnapshot:
        """Freeze the current state into an :class:`ObsSnapshot`."""
        rec = self.spans
        return ObsSnapshot(
            metrics=self.metrics.rows(),
            spans=[
                {
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "depth": s.depth,
                    "seq": s.seq,
                    "labels": {k: v for k, v in s.labels.items()},
                }
                for s in rec.records
            ],
            events=[
                {"time": e.time, "seq": e.seq, "name": e.name}
                for e in rec.events
            ],
            spans_dropped=rec.spans_dropped,
            events_dropped=rec.events_dropped,
            events_seen=rec.events_seen,
            event_sample_every=rec.event_sample_every,
        )


class _NullSpan:
    """Inert span stand-in returned by :class:`NullObserver`."""

    __slots__ = ()

    def set_end(self, end: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullObserver(Observer):
    """The do-nothing observer: every hook is an inert no-op.

    Layers drop a ``NullObserver`` at construction (``enabled`` is
    ``False``), so it normally costs nothing at all; the overridden
    methods below only matter for user code that calls the facade
    directly on whatever observer it was handed.
    """

    enabled = False

    def bind_clock(self, sim: "Simulator") -> None:
        pass

    def span(self, name: str, **labels: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def record_event(self, event: "Event") -> None:
        pass

    def phase(self, name: str):
        return nullcontext()

    def snapshot(self) -> ObsSnapshot:
        return ObsSnapshot()


def maybe_phase(observer: Optional[Observer], name: str):
    """``observer.phase(name)`` when observing, else a null context."""
    if observer is None or not observer.enabled:
        return nullcontext()
    return observer.phase(name)
