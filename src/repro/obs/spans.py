"""Simulation-time spans and the sampled event buffer.

A **span** is a named, labelled interval on the :class:`Simulator
<repro.sim.engine.Simulator>` clock: ``with recorder.span("ddc.iteration",
iteration=3): ...`` records start, end, nesting depth and labels into a
bounded in-memory buffer.  Because a whole DDC iteration executes inside
one simulation event (the clock does not advance), producers that model
elapsed simulated time themselves can override the recorded end with
:meth:`Span.set_end`.

The recorder also owns the **event buffer** the engine's
:class:`~repro.sim.engine.Event` records feed: every ``event_sample_every``-th
fired event is kept (time, seq, name), giving a cheap structural sample
of the run's event stream without holding ~10^6 records.

Both buffers are bounded; overflow is *counted*, never silently grown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import SpanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Event

__all__ = ["SpanRecord", "Span", "SpanRecorder"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Span name (dotted, e.g. ``ddc.iteration``).
    start, end:
        Interval endpoints on the recorder's clock (simulation seconds),
        unless the producer overrode ``end`` via :meth:`Span.set_end`.
    depth:
        Nesting depth at entry (0 = top level).
    seq:
        Monotone completion sequence number (order spans *closed*).
    labels:
        Small string/number labels (lab, iteration index, ...).
    """

    name: str
    start: float
    end: float
    depth: int
    seq: int
    labels: Dict[str, object]

    @property
    def duration(self) -> float:
        """Span extent in (simulated) seconds."""
        return self.end - self.start


class Span:
    """Context manager for one in-flight span.

    Exits must mirror entries exactly: leaving a span that is not the
    innermost open one (or was never entered) raises :class:`SpanError`.
    """

    __slots__ = ("_recorder", "name", "labels", "start", "_depth", "_end")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 labels: Dict[str, object]):
        self._recorder = recorder
        self.name = name
        self.labels = labels
        self.start = 0.0
        self._depth = 0
        self._end: Optional[float] = None

    def set_end(self, end: float) -> None:
        """Override the recorded end time (for single-event producers).

        The DDC coordinator runs a whole iteration at one simulation
        instant; it computes the iteration's simulated extent itself and
        stamps it here so the span still has a meaningful duration.
        """
        if end < self.start:
            raise SpanError(
                f"span {self.name!r}: end {end} precedes start {self.start}"
            )
        self._end = float(end)

    def __enter__(self) -> "Span":
        self._recorder._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._exit(self)


class SpanRecorder:
    """Bounded buffer of finished spans plus the sampled event stream.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulation) time.
    max_spans:
        Buffer capacity; further spans are dropped and counted in
        :attr:`spans_dropped`.
    max_events:
        Event-buffer capacity (overflow counted in :attr:`events_dropped`).
    event_sample_every:
        Keep every N-th fired event (1 = keep all).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        max_spans: int = 100_000,
        max_events: int = 4096,
        event_sample_every: int = 64,
    ):
        if max_spans < 1 or max_events < 1 or event_sample_every < 1:
            raise SpanError("span/event buffer sizes must be positive")
        self._clock = clock
        self.max_spans = int(max_spans)
        self.max_events = int(max_events)
        self.event_sample_every = int(event_sample_every)
        self.records: List[SpanRecord] = []
        self.events: List["Event"] = []
        self.spans_dropped = 0
        self.events_dropped = 0
        self.events_seen = 0
        self._stack: List[Span] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: object) -> Span:
        """A new (not yet entered) span context manager."""
        return Span(self, name, labels)

    @property
    def open_depth(self) -> int:
        """Number of currently open (entered, not exited) spans."""
        return len(self._stack)

    def _enter(self, span: Span) -> None:
        if span in self._stack:
            raise SpanError(f"span {span.name!r} entered twice")
        span.start = self._clock()
        span._depth = len(self._stack)
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else None
            raise SpanError(
                f"unbalanced span exit: closing {span.name!r} while the "
                f"innermost open span is {open_name!r}"
            )
        self._stack.pop()
        end = span._end if span._end is not None else self._clock()
        if len(self.records) >= self.max_spans:
            self.spans_dropped += 1
            return
        self.records.append(
            SpanRecord(
                name=span.name,
                start=span.start,
                end=end,
                depth=span._depth,
                seq=self._seq,
                labels=span.labels,
            )
        )
        self._seq += 1

    # ------------------------------------------------------------------
    # events (fed by Simulator.step)
    # ------------------------------------------------------------------
    def record_event(self, event: "Event") -> None:
        """Sample one fired engine event into the bounded buffer."""
        self.events_seen += 1
        if (self.events_seen - 1) % self.event_sample_every:
            return
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append(event)
