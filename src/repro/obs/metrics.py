"""Metric primitives: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat map from ``(name, labels)`` to one
metric instrument.  The design follows the operational-telemetry model
that made the Grid'5000 / Jefferson-Lab style cluster reports tractable:

- **counters** are monotone event tallies (``ddc.timeouts``),
- **gauges** hold a last-written value (``sim.heap_depth_max``),
- **histograms** bucket observations against a *fixed* edge vector so
  two runs (or two labs) are always comparable bucket-for-bucket.

Hot-path contract
-----------------
Instrumented layers resolve their instruments **once** (at construction
or lazily per label set) and then call ``inc`` / ``observe`` on the
bound object; the registry dictionary is never consulted per event.
That keeps fully-instrumented overhead within the <=10% budget measured
by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple

from repro.errors import MetricError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_buckets",
    "LATENCY_BUCKETS",
    "DURATION_BUCKETS",
    "REQUEST_BUCKETS",
]

#: ``(name, ((label, value), ...))`` -- the registry key of one instrument.
LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def geometric_buckets(lo: float, hi: float, n: int) -> Tuple[float, ...]:
    """``n`` geometrically spaced upper edges from ``lo`` to ``hi``.

    The returned edges are finite; every histogram implicitly carries a
    final ``+inf`` overflow bucket on top of them.
    """
    if not (0 < lo < hi) or n < 2:
        raise MetricError(f"bad geometric bucket spec ({lo}, {hi}, {n})")
    ratio = (hi / lo) ** (1.0 / (n - 1))
    return tuple(lo * ratio**i for i in range(n))


#: Edges for sub-second remote-execution latencies (seconds).
LATENCY_BUCKETS = geometric_buckets(0.05, 12.8, 9)
#: Edges for iteration / lab-pass durations (seconds).
DURATION_BUCKETS = geometric_buckets(0.5, 512.0, 11)
#: Edges for live query-service request handling (wall seconds): local
#: in-memory snapshots should land well under a millisecond, but the
#: range extends to seconds so long-poll subscription waits still bucket.
REQUEST_BUCKETS = geometric_buckets(0.0002, 3.2768, 15)


class Counter:
    """A monotone tally.  ``inc`` is the only mutation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the tally."""
        if n < 0:
            raise MetricError(f"counters only go up, got inc({n})")
        self.value += n


class Gauge:
    """A last-write-wins value (e.g. a high-water mark or phase timing)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with ``<= edge`` (inclusive) semantics.

    ``edges`` are strictly increasing finite upper bounds; observations
    land in the first bucket whose edge is ``>= value``, values above
    the last edge land in the implicit ``+inf`` overflow bucket, so
    ``counts`` has ``len(edges) + 1`` cells.  Min/max/sum are tracked
    exactly alongside the bucketed counts.
    """

    __slots__ = ("edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, edges: Iterable[float]):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise MetricError("histogram needs at least one bucket edge")
        if any(not math.isfinite(e) for e in edges):
            raise MetricError(f"histogram edges must be finite: {edges}")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(f"histogram edges must strictly increase: {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by ``(name, labels)``.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("ddc.timeouts", lab="L01").inc()
    >>> reg.counter("ddc.timeouts", lab="L01").value
    1
    >>> h = reg.histogram("ddc.iteration_seconds", edges=(1.0, 10.0))
    >>> h.observe(3.2); h.counts
    [0, 1, 0]
    """

    def __init__(self) -> None:
        self._metrics: Dict[LabelKey, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, key: LabelKey, cls, factory):
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise MetricError(
                f"{key[0]!r} with labels {dict(key[1])} is already registered "
                f"as {type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, creating it on first use."""
        return self._get_or_create(_label_key(name, labels), Counter, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, creating it on first use."""
        return self._get_or_create(_label_key(name, labels), Gauge, Gauge)

    def histogram(
        self, name: str, edges: Iterable[float] = DURATION_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, creating it on first use.

        A second caller must pass the same ``edges`` (or rely on the
        default); mismatched edges for one name are a :class:`MetricError`
        because their buckets could not be compared or merged.
        """
        key = _label_key(name, labels)
        hist = self._get_or_create(key, Histogram, lambda: Histogram(edges))
        if hist.edges != tuple(float(e) for e in edges):
            raise MetricError(
                f"histogram {name!r} already registered with edges "
                f"{hist.edges}, conflicting with {tuple(edges)}"
            )
        return hist

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def rows(self) -> "List[dict]":
        """All instruments as plain dicts (deterministic order)."""
        out = []
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            row: dict = {"name": name, "labels": dict(labels)}
            if isinstance(metric, Counter):
                row.update(kind="counter", value=metric.value)
            elif isinstance(metric, Gauge):
                row.update(kind="gauge", value=metric.value)
            else:
                assert isinstance(metric, Histogram)
                row.update(
                    kind="histogram",
                    edges=list(metric.edges),
                    counts=list(metric.counts),
                    count=metric.count,
                    total=metric.total,
                    min=None if metric.count == 0 else metric.vmin,
                    max=None if metric.count == 0 else metric.vmax,
                )
            out.append(row)
        return out
