"""Worker-health vocabulary and metric exports for supervised shards.

The shard supervisor (:mod:`repro.shard.supervisor`) tracks one health
state per worker process and mirrors it into the campaign's
:class:`~repro.obs.metrics.MetricsRegistry` so an exported snapshot is
self-describing:

- ``shard.worker_state{shard=k}`` gauge -- the state's ordinal in
  :data:`WORKER_STATES` (stable, so dashboards can threshold on it);
- ``shard.heartbeats{shard=k}`` counter -- heartbeats received;
- ``shard.restarts{shard=k}`` counter -- supervised restarts burned;
- ``shard.last_iteration{shard=k}`` gauge -- last iteration the worker
  reported complete.

States
------
``STARTING``
    Process launched, no heartbeat yet.
``RUNNING``
    Heartbeats arriving within the liveness deadline.
``DEGRADED``
    Last heartbeat is older than ``degraded_after`` -- the worker may
    be stuck in a long iteration or dying; no action yet.
``PAUSED``
    The worker acknowledged a PAUSE steering command at an iteration
    boundary and is idling (still heartbeating).
``DEAD``
    Liveness deadline blown or the process exited without delivering
    an outcome; the supervisor schedules a restart (or gives up).
``STOPPED``
    The worker acknowledged STOP and exited cleanly mid-run.
``DONE``
    The worker delivered its shard outcome.
``LOST``
    Networked campaigns only: the shard's lease regrant budget is
    exhausted and the campaign settled it through the degraded merge
    (``docs/distributed.md``).

The networked control plane (:mod:`repro.shard.net`) additionally
exports wire-level metrics through :func:`record_net_connect`,
:func:`record_net_disconnect`, :func:`record_net_message`,
:func:`record_lease_grant` and :func:`record_lease_expiry`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "STARTING",
    "RUNNING",
    "DEGRADED",
    "PAUSED",
    "DEAD",
    "STOPPED",
    "DONE",
    "LOST",
    "WORKER_STATES",
    "worker_state_code",
    "record_worker_state",
    "record_worker_heartbeat",
    "record_worker_restart",
    "record_net_connect",
    "record_net_disconnect",
    "record_net_message",
    "record_lease_grant",
    "record_lease_expiry",
]

STARTING = "starting"
RUNNING = "running"
DEGRADED = "degraded"
PAUSED = "paused"
DEAD = "dead"
STOPPED = "stopped"
DONE = "done"
LOST = "lost"

#: All states, in ordinal order (the gauge encoding).  New states are
#: only ever appended so existing ordinals stay stable.
WORKER_STATES = (STARTING, RUNNING, DEGRADED, PAUSED, DEAD, STOPPED, DONE,
                 LOST)

_STATE_CODES = {name: code for code, name in enumerate(WORKER_STATES)}


def worker_state_code(state: str) -> int:
    """Stable ordinal of a worker state (for the gauge encoding)."""
    try:
        return _STATE_CODES[state]
    except KeyError:
        raise ValueError(
            f"unknown worker state {state!r}; expected one of "
            f"{WORKER_STATES}"
        ) from None


def record_worker_state(metrics: Optional[MetricsRegistry], shard: int,
                        state: str) -> None:
    """Mirror a worker's health state into the campaign metrics."""
    code = worker_state_code(state)  # validate even when unobserved
    if metrics is None:
        return
    metrics.gauge("shard.worker_state", shard=str(shard)).set(code)


def record_worker_heartbeat(metrics: Optional[MetricsRegistry], shard: int,
                            iteration: int) -> None:
    """Count a heartbeat and advance the shard's iteration gauge."""
    if metrics is None:
        return
    metrics.counter("shard.heartbeats", shard=str(shard)).inc()
    metrics.gauge("shard.last_iteration", shard=str(shard)).set(iteration)


def record_worker_restart(metrics: Optional[MetricsRegistry],
                          shard: int) -> None:
    """Count one supervised restart of a shard worker."""
    if metrics is None:
        return
    metrics.counter("shard.restarts", shard=str(shard)).inc()


# ----------------------------------------------------------------------
# Wire-level health of the networked control plane (repro.shard.net)
# ----------------------------------------------------------------------

def record_net_connect(metrics: Optional[MetricsRegistry],
                       connected: int) -> None:
    """Count one accepted worker connection; gauge the connected pool."""
    if metrics is None:
        return
    metrics.counter("net.connects").inc()
    metrics.gauge("net.workers_connected").set(connected)


def record_net_disconnect(metrics: Optional[MetricsRegistry],
                          connected: int) -> None:
    """Count one lost worker connection; gauge the connected pool."""
    if metrics is None:
        return
    metrics.counter("net.disconnects").inc()
    metrics.gauge("net.workers_connected").set(connected)


def record_net_message(metrics: Optional[MetricsRegistry],
                       direction: str) -> None:
    """Count one protocol message moved (``direction``: sent/received)."""
    if metrics is None:
        return
    metrics.counter("net.messages", direction=direction).inc()


def record_lease_grant(metrics: Optional[MetricsRegistry],
                       shard: int) -> None:
    """Count one lease grant (first grant and every regrant) of a shard."""
    if metrics is None:
        return
    metrics.counter("net.lease_grants", shard=str(shard)).inc()


def record_lease_expiry(metrics: Optional[MetricsRegistry],
                        shard: int) -> None:
    """Count one liveness-deadline lease expiry of a shard."""
    if metrics is None:
        return
    metrics.counter("net.lease_expiries", shard=str(shard)).inc()
