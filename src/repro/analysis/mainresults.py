"""Table 2: main results of the monitoring experiment.

For each login-state class (*No login*, *With login*, *Both* -- after the
section-4.2 forgotten-session reclassification) the paper reports:

- sample count,
- average uptime as a percentage of probe attempts,
- average CPU idleness (pairwise estimator),
- average RAM and swap load,
- average used disk space,
- average sent / received network rates.

Network rates, like CPU idleness, are derived from consecutive-sample
counter differences (the NIC counters reset at boot, so reboot-spanning
pairs are excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cpu import FORGOTTEN_THRESHOLD, PairwiseCpu, pairwise_cpu
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta

__all__ = ["LoginClassRow", "MainResults", "compute_main_results"]


@dataclass(frozen=True)
class LoginClassRow:
    """One column of Table 2 (the paper lays classes out as columns)."""

    samples: int
    uptime_pct: float
    cpu_idle_pct: float
    ram_load_pct: float
    swap_load_pct: float
    disk_used_gb: float
    sent_bps: float
    recv_bps: float


@dataclass(frozen=True)
class MainResults:
    """Table 2: rows ``no_login`` / ``with_login`` / ``both``."""

    no_login: LoginClassRow
    with_login: LoginClassRow
    both: LoginClassRow
    threshold: float
    attempts: int

    def as_dict(self) -> Dict[str, LoginClassRow]:
        """The three classes keyed by their Table-2 column label."""
        return {
            "No login": self.no_login,
            "With login": self.with_login,
            "Both": self.both,
        }


def compute_main_results(
    trace: ColumnarTrace,
    meta: Optional[TraceMeta] = None,
    *,
    threshold: float = FORGOTTEN_THRESHOLD,
    pairs: Optional[PairwiseCpu] = None,
) -> MainResults:
    """Compute Table 2 from a trace.

    Parameters
    ----------
    trace:
        The columnar trace.
    meta:
        Experiment metadata (attempt counts); defaults to ``trace.meta``.
    threshold:
        Forgotten-session reclassification threshold, seconds.
    pairs:
        Pre-computed pairwise estimates to reuse; must have been built
        with the same ``threshold``.
    """
    meta = meta or trace.meta
    if meta is None:
        raise AnalysisError("compute_main_results needs trace metadata")
    if meta.attempts <= 0:
        raise AnalysisError("metadata carries no probe-attempt accounting")
    if pairs is None:
        pairs = pairwise_cpu(trace, forgotten_threshold=threshold)

    occupied = trace.occupied_mask(threshold)
    # network rates per pair (bytes/s), reboot-free by construction
    gap = pairs.gap
    sent_rate = (trace.sent[pairs.j] - trace.sent[pairs.i]) / gap
    recv_rate = (trace.recv[pairs.j] - trace.recv[pairs.i]) / gap
    np.clip(sent_rate, 0.0, None, out=sent_rate)
    np.clip(recv_rate, 0.0, None, out=recv_rate)

    def row(sample_mask: Optional[np.ndarray], pair_mask: Optional[np.ndarray]) -> LoginClassRow:
        s = sample_mask if sample_mask is not None else np.ones(len(trace), bool)
        p = pair_mask if pair_mask is not None else np.ones(len(pairs), bool)
        n = int(s.sum())
        return LoginClassRow(
            samples=n,
            uptime_pct=100.0 * n / meta.attempts,
            cpu_idle_pct=float(pairs.idle_pct[p].mean()) if p.any() else float("nan"),
            ram_load_pct=float(trace.mem[s].mean()) if n else float("nan"),
            swap_load_pct=float(trace.swap[s].mean()) if n else float("nan"),
            disk_used_gb=float(trace.disk_used[s].mean()) / 1e9 if n else float("nan"),
            sent_bps=float(sent_rate[p].mean()) if p.any() else float("nan"),
            recv_bps=float(recv_rate[p].mean()) if p.any() else float("nan"),
        )

    return MainResults(
        no_login=row(~occupied, ~pairs.occupied),
        with_login=row(occupied, pairs.occupied),
        both=row(None, None),
        threshold=threshold,
        attempts=meta.attempts,
    )
