"""Analysis pipeline: every table and figure of the paper.

Each module regenerates one slice of the evaluation:

- :mod:`repro.analysis.cpu` -- pairwise boot-relative CPU-idleness
  estimator (the paper's section 4.2 methodology),
- :mod:`repro.analysis.sessions` -- interactive-session reconstruction,
  relative-hour buckets and the forgotten-login threshold (Fig 2),
- :mod:`repro.analysis.mainresults` -- Table 2,
- :mod:`repro.analysis.availability` -- powered-on / user-free series and
  per-machine uptime ratios + nines (Figs 3, 4-left),
- :mod:`repro.analysis.stability` -- machine sessions and SMART
  power-cycle analysis (Fig 4-right, section 5.2),
- :mod:`repro.analysis.weekly` -- weekly resource profiles (Fig 5),
- :mod:`repro.analysis.equivalence` -- cluster-equivalence ratio (Fig 6),
- :mod:`repro.analysis.stats` -- shared statistical helpers.

All functions consume a :class:`~repro.traces.columnar.ColumnarTrace` and
are fully vectorised.
"""

from repro.analysis.stats import availability_nines, weighted_mean
from repro.analysis.cpu import PairwiseCpu, pairwise_cpu
from repro.analysis.sessions import (
    SessionBuckets,
    forgotten_stats,
    reconstruct_login_sessions,
    relative_hour_buckets,
)
from repro.analysis.mainresults import MainResults, compute_main_results
from repro.analysis.availability import (
    AvailabilitySeries,
    machines_on_series,
    uptime_ratios,
)
from repro.analysis.stability import (
    MachineSessions,
    SmartStats,
    detect_machine_sessions,
    smart_power_cycle_stats,
)
from repro.analysis.weekly import WeeklyProfiles, weekly_profiles
from repro.analysis.equivalence import EquivalenceResult, cluster_equivalence
from repro.analysis.idleres import (
    DiskIdleness,
    MemoryIdleness,
    backup_capacity,
    disk_idleness,
    memory_idleness,
    network_ram_potential,
)
from repro.analysis.labs import LabSummary, per_lab_summary
from repro.analysis.periods import PeriodSlice, partition_by_period

__all__ = [
    "weighted_mean",
    "availability_nines",
    "PairwiseCpu",
    "pairwise_cpu",
    "SessionBuckets",
    "relative_hour_buckets",
    "forgotten_stats",
    "reconstruct_login_sessions",
    "MainResults",
    "compute_main_results",
    "AvailabilitySeries",
    "machines_on_series",
    "uptime_ratios",
    "MachineSessions",
    "detect_machine_sessions",
    "SmartStats",
    "smart_power_cycle_stats",
    "WeeklyProfiles",
    "weekly_profiles",
    "EquivalenceResult",
    "cluster_equivalence",
    "MemoryIdleness",
    "memory_idleness",
    "DiskIdleness",
    "disk_idleness",
    "network_ram_potential",
    "backup_capacity",
    "LabSummary",
    "per_lab_summary",
    "PeriodSlice",
    "partition_by_period",
]
