"""Machine availability: Figs 3 and 4-left.

- **Fig 3**: time series of powered-on machines (samples per iteration)
  and of user-free machines (samples without a genuinely occupied
  session), with their experiment-wide averages (paper: 84.87 and 57.29).
- **Fig 4-left**: per-machine cumulated uptime ratio, sorted descending,
  plus the same availability expressed in *nines*.  The paper highlights
  that only 30 machines exceeded 0.5, fewer than 10 exceeded 0.8 and
  none 0.9 -- classroom machines are far less available than the
  corporate fleet of Bolosky et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cpu import FORGOTTEN_THRESHOLD
from repro.analysis.stats import availability_nines
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta

__all__ = [
    "AvailabilitySeries",
    "machines_on_series",
    "UptimeRatios",
    "uptime_ratios",
]


@dataclass(frozen=True)
class AvailabilitySeries:
    """Fig-3 time series, indexed by iteration.

    ``t`` holds each iteration's nominal start time.  Iterations without
    any sample are absent from the series (an iteration the coordinator
    skipped is indistinguishable from one where every machine was off),
    but ``iterations_run`` keeps the true denominator so the averages
    match the paper's arithmetic (583,653 / 6,883 = 84.87).
    """

    iteration: np.ndarray
    t: np.ndarray
    powered_on: np.ndarray
    user_free: np.ndarray
    iterations_run: int

    @property
    def avg_powered_on(self) -> float:
        """Average machines powered on per iteration run (paper: 84.87)."""
        return float(self.powered_on.sum() / self.iterations_run)

    @property
    def avg_user_free(self) -> float:
        """Average user-free machines per iteration run (paper: 57.29)."""
        return float(self.user_free.sum() / self.iterations_run)


def machines_on_series(
    trace: ColumnarTrace,
    *,
    threshold: float = FORGOTTEN_THRESHOLD,
    sample_period: Optional[float] = None,
) -> AvailabilitySeries:
    """Per-iteration counts of powered-on and user-free machines.

    "User-free" uses the reclassified login state: machines whose only
    session is a forgotten one count as free, which is how the paper's
    averages (84.87 / 57.29 = 583,653 / 6,883 and 393,970 / 6,883) are
    consistent with Table 2.
    """
    if sample_period is None:
        if trace.meta is None:
            raise AnalysisError("need a sample period or trace metadata")
        sample_period = trace.meta.sample_period
    occupied = trace.occupied_mask(threshold)
    iters = trace.iteration
    n_iter = int(iters.max()) + 1
    on = np.bincount(iters, minlength=n_iter)
    occ = np.bincount(iters, weights=occupied.astype(float), minlength=n_iter)
    present = np.flatnonzero(on > 0)
    if trace.meta is not None and trace.meta.iterations_run > 0:
        iterations_run = trace.meta.iterations_run
    else:
        iterations_run = int(present.shape[0])
    return AvailabilitySeries(
        iteration=present,
        t=present.astype(float) * sample_period,
        powered_on=on[present].astype(np.int64),
        user_free=(on[present] - occ[present]).astype(np.int64),
        iterations_run=iterations_run,
    )


@dataclass(frozen=True)
class UptimeRatios:
    """Fig-4-left data: per-machine cumulated uptime ratios and nines.

    Machines are sorted by descending ratio, as in the paper's plot.
    ``machine_id`` maps each curve position back to a machine.
    """

    machine_id: np.ndarray
    ratio: np.ndarray
    nines: np.ndarray

    def count_above(self, level: float) -> int:
        """Number of machines with uptime ratio strictly above ``level``."""
        return int((self.ratio > level).sum())

    def summary(self) -> Dict[str, float]:
        """The Fig-4 headline counts the paper quotes."""
        return {
            "above_0.5": self.count_above(0.5),
            "above_0.8": self.count_above(0.8),
            "above_0.9": self.count_above(0.9),
            "max": float(self.ratio.max()),
            "mean": float(self.ratio.mean()),
        }


def uptime_ratios(trace: ColumnarTrace, meta: Optional[TraceMeta] = None) -> UptimeRatios:
    """Cumulated uptime ratio per machine: samples seen / iterations run.

    Machines never sampled (if any) receive ratio 0 so the fleet size
    matches the roster; the denominator is the number of iterations the
    coordinator actually ran, exactly as the paper's response-rate
    arithmetic implies.
    """
    meta = meta or trace.meta
    if meta is None:
        raise AnalysisError("uptime_ratios needs trace metadata")
    if meta.iterations_run <= 0:
        raise AnalysisError("metadata carries no iteration accounting")
    n_machines = meta.n_machines
    counts = np.bincount(trace.machine_id, minlength=n_machines).astype(float)
    ratio = counts / meta.iterations_run
    # Clock jitter can nudge a machine to ratio > 1 only through double
    # sampling, which the coordinator never does; clamp defensively.
    np.clip(ratio, 0.0, 1.0, out=ratio)
    order = np.argsort(-ratio, kind="stable")
    ratio = ratio[order]
    return UptimeRatios(
        machine_id=order.astype(np.int64),
        ratio=ratio,
        nines=np.asarray(availability_nines(ratio)),
    )
