"""The paper's CPU-idleness estimator.

Section 4.2: instantaneous CPU readings are useless at 15-minute
granularity, so W32Probe reports the *cumulated idle-thread time since
boot*.  Given two consecutive samples of the same machine with no reboot
in between, the average CPU idleness over the interval is exactly::

    idleness = (idle_j - idle_i) / (t_j - t_i)

This module materialises all valid consecutive-sample pairs of a trace,
flags reboots (which reset the counter), and attaches the login-state
classification each pair's *ending* sample carries -- that is the state
the paper's Table 2 buckets pairs by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace

__all__ = ["PairwiseCpu", "pairwise_cpu", "idleness_by_login_state"]

#: Default forgotten-session threshold (10 hours, section 4.2).
FORGOTTEN_THRESHOLD: float = 10 * 3600.0


@dataclass(frozen=True)
class PairwiseCpu:
    """All valid consecutive-sample pairs with derived per-pair metrics.

    Arrays are parallel, one entry per valid (no-reboot, bounded-gap)
    pair:

    - ``i``, ``j``: indices into the trace's sorted arrays,
    - ``gap``: seconds between the samples,
    - ``idle_frac``: average CPU idleness over the interval, in [0, 1],
    - ``occupied``: login-state classification of the ending sample
      (forgotten sessions count as *not* occupied),
    - ``raw_login``: uncorrected login state of the ending sample,
    - ``t``: timestamp of the ending sample (used for weekly binning),
    - ``machine_id``: the machine the pair belongs to.
    """

    i: np.ndarray
    j: np.ndarray
    gap: np.ndarray
    idle_frac: np.ndarray
    occupied: np.ndarray
    raw_login: np.ndarray
    t: np.ndarray
    machine_id: np.ndarray

    def __len__(self) -> int:
        return self.i.shape[0]

    @property
    def idle_pct(self) -> np.ndarray:
        """Idleness as a percentage (the unit the paper reports)."""
        return 100.0 * self.idle_frac


def pairwise_cpu(
    trace: ColumnarTrace,
    *,
    forgotten_threshold: Optional[float] = FORGOTTEN_THRESHOLD,
    max_gap: Optional[float] = None,
) -> PairwiseCpu:
    """Build the pairwise CPU-idleness estimates of a trace.

    Parameters
    ----------
    trace:
        Columnar trace (sorted by machine, time).
    forgotten_threshold:
        Session age (seconds) at which a login is reclassified as a
        forgotten session; ``None`` keeps the raw login state.
    max_gap:
        Maximum pair gap in seconds (defaults to 1.75x the sampling
        period, see :meth:`ColumnarTrace.consecutive_pairs`).

    Notes
    -----
    Pairs spanning a reboot are dropped: the idle counter reset makes the
    difference meaningless.  Idleness is clipped to [0, 1] -- tiny
    excursions occur because the probe's collection time is the output
    arrival time while counters were read at execution time.
    """
    i, j = trace.consecutive_pairs(max_gap)
    if i.size == 0:
        raise AnalysisError("trace has no consecutive sample pairs")
    keep = ~trace.reboot_between(i, j)
    i, j = i[keep], j[keep]
    gap = trace.t[j] - trace.t[i]
    if np.any(gap <= 0):
        raise AnalysisError("non-increasing collection times within a machine")
    idle = (trace.idle[j] - trace.idle[i]) / gap
    np.clip(idle, 0.0, 1.0, out=idle)
    occupied = trace.occupied_mask(forgotten_threshold)[j]
    return PairwiseCpu(
        i=i,
        j=j,
        gap=gap,
        idle_frac=idle,
        occupied=occupied,
        raw_login=trace.has_session[j].copy(),
        t=trace.t[j].copy(),
        machine_id=trace.machine_id[j].copy(),
    )


def idleness_by_login_state(pairs: PairwiseCpu) -> Dict[str, float]:
    """Average idleness (percent) split by login state, Table-2 style.

    Returns ``{"both": ..., "no_login": ..., "with_login": ...}``; a
    state with no pairs yields NaN.
    """
    out: Dict[str, float] = {"both": float(pairs.idle_pct.mean())}
    for key, mask in (("no_login", ~pairs.occupied), ("with_login", pairs.occupied)):
        out[key] = float(pairs.idle_pct[mask].mean()) if mask.any() else float("nan")
    return out
