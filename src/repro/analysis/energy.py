"""Energy accounting and the harvest-vs-power-management trade-off.

An extension the paper's numbers invite: machines that sit 99.7% idle
still draw near-full power, so the same fleet that attracts cycle
harvesters also attracts power management.  The two policies compete --
suspending idle machines saves energy but removes them from the
harvestable pool.  This module quantifies both sides from a trace:

- :func:`energy_consumption` -- kWh drawn over the experiment using an
  era-appropriate desktop power model (idle draw plus a busy-scaled
  dynamic component; CRT monitors are excluded, as machines run headless
  overnight),
- :func:`suspend_whatif` -- what an "suspend after T idle-and-free
  minutes, wake on demand" policy would have saved, and how much
  harvestable capacity (Fig-6 currency) it would have destroyed.

Both are closed-form over the pairwise estimates; no re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.cpu import PairwiseCpu, pairwise_cpu
from repro.analysis.equivalence import machine_weights
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace

__all__ = ["PowerModel", "EnergyReport", "energy_consumption", "suspend_whatif"]


@dataclass(frozen=True)
class PowerModel:
    """Desktop power draw model (watts), early-2000s tower defaults.

    ``draw = idle_watts + (peak_watts - idle_watts) * busy_fraction``;
    a suspended machine draws ``suspend_watts``.
    """

    idle_watts: float = 70.0
    peak_watts: float = 115.0
    suspend_watts: float = 4.0

    def __post_init__(self) -> None:
        if not 0 <= self.suspend_watts <= self.idle_watts <= self.peak_watts:
            raise AnalysisError("power model must order suspend <= idle <= peak")

    def draw(self, busy_fraction: np.ndarray) -> np.ndarray:
        """Instantaneous draw in watts for a busy fraction in [0, 1]."""
        return self.idle_watts + (self.peak_watts - self.idle_watts) * busy_fraction


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting over a trace.

    Attributes
    ----------
    consumed_kwh:
        Total energy drawn by powered-on machines over the horizon.
    idle_kwh:
        The share of it spent while CPUs were idle -- the energy the
        97.9% idleness figure burns.
    mean_power_kw:
        Average fleet draw.
    """

    consumed_kwh: float
    idle_kwh: float
    mean_power_kw: float


def energy_consumption(
    trace: ColumnarTrace,
    model: Optional[PowerModel] = None,
    *,
    pairs: Optional[PairwiseCpu] = None,
) -> EnergyReport:
    """Integrate the fleet's energy draw over the sampled intervals."""
    model = model or PowerModel()
    if pairs is None:
        pairs = pairwise_cpu(trace)
    if len(pairs) == 0:
        raise AnalysisError("no pairwise intervals to integrate")
    busy = 1.0 - pairs.idle_frac
    watts = model.draw(busy)
    joules = float(np.sum(watts * pairs.gap))
    idle_joules = float(
        np.sum((model.idle_watts * pairs.idle_frac) * pairs.gap)
    )
    horizon = trace.meta.horizon if trace.meta else float(trace.t.max())
    return EnergyReport(
        consumed_kwh=joules / 3.6e6,
        idle_kwh=idle_joules / 3.6e6,
        mean_power_kw=joules / horizon / 1000.0,
    )


@dataclass(frozen=True)
class SuspendWhatIf:
    """Outcome of the suspend-idle-machines policy replay.

    Attributes
    ----------
    saved_kwh:
        Energy saved by suspending eligible intervals.
    saved_fraction:
        Saved / baseline consumption.
    lost_equivalence:
        Harvestable capacity destroyed, in Fig-6 ratio units.
    suspended_share:
        Fraction of powered-on machine-time spent suspended.
    """

    saved_kwh: float
    saved_fraction: float
    lost_equivalence: float
    suspended_share: float


def suspend_whatif(
    trace: ColumnarTrace,
    *,
    idle_minutes: float = 30.0,
    model: Optional[PowerModel] = None,
    pairs: Optional[PairwiseCpu] = None,
) -> SuspendWhatIf:
    """Replay a "suspend free machines idle for >= T" power policy.

    An interval is *suspendable* when the machine is user-free at both
    endpoints and has already been user-free for ``idle_minutes`` --
    approximated at sampling granularity by requiring the preceding
    ``ceil(T / period)`` intervals of the machine to be free as well.

    Returns energy saved versus the baseline and the harvestable
    capacity lost (the exact tension the paper's conclusions set up).
    """
    model = model or PowerModel()
    if pairs is None:
        pairs = pairwise_cpu(trace)
    meta = trace.meta
    if meta is None:
        raise AnalysisError("suspend_whatif needs trace metadata")
    if idle_minutes < 0:
        raise AnalysisError("idle_minutes must be non-negative")
    period = meta.sample_period
    lookback = int(np.ceil(idle_minutes * 60.0 / period))

    free_i = ~trace.has_session[pairs.i]
    free_j = ~trace.has_session[pairs.j]
    eligible = free_i & free_j
    # require `lookback` preceding intervals of the same machine free
    # too; run lengths are computed vectorised (see the hpc guides):
    # a run starts where an eligible interval follows a machine change
    # or an ineligible one, and each eligible position's run length is
    # its distance to the most recent run start.
    n = len(pairs)
    idx = np.arange(n)
    m = pairs.machine_id
    new_machine = np.empty(n, dtype=bool)
    new_machine[0] = True
    new_machine[1:] = m[1:] != m[:-1]
    prev_ineligible = np.empty(n, dtype=bool)
    prev_ineligible[0] = True
    prev_ineligible[1:] = ~eligible[:-1]
    start = eligible & (new_machine | prev_ineligible)
    run_start = np.maximum.accumulate(np.where(start, idx, -1))
    run = np.where(eligible & (run_start >= 0), idx - run_start + 1, 0)
    suspendable = run > lookback

    busy = 1.0 - pairs.idle_frac
    watts = model.draw(busy)
    baseline_j = float(np.sum(watts * pairs.gap))
    saved_j = float(
        np.sum((watts[suspendable] - model.suspend_watts) * pairs.gap[suspendable])
    )
    # harvest capacity destroyed: suspended intervals contributed their
    # idleness x weight to Fig 6's numerator
    weights = machine_weights(meta)
    w = weights[pairs.machine_id]
    lost = float(
        np.sum(pairs.idle_frac[suspendable] * w[suspendable] * pairs.gap[suspendable])
    )
    denom = float(weights.sum()) * meta.horizon
    total_gap = float(pairs.gap.sum())
    return SuspendWhatIf(
        saved_kwh=saved_j / 3.6e6,
        saved_fraction=saved_j / baseline_j if baseline_j > 0 else float("nan"),
        lost_equivalence=lost / denom,
        suspended_share=float(pairs.gap[suspendable].sum() / total_gap)
        if total_gap > 0
        else float("nan"),
    )
