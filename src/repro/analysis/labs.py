"""Per-lab breakdowns: Table-1 grouping applied to the dynamic results.

The paper aggregates most results fleet-wide; its environment, however,
is strongly structured by lab (hardware generation, curriculum, demand).
This module slices any trace by lab, producing the per-lab counterparts
of the headline metrics -- useful to see e.g. that the old 128 MB
PIII labs run hotter on memory or that the CPU-heavy class lives in
specific rooms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.cpu import FORGOTTEN_THRESHOLD, PairwiseCpu
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace

__all__ = ["LabSummary", "per_lab_summary"]


@dataclass(frozen=True)
class LabSummary:
    """Dynamic-metric aggregates for one lab.

    Attributes
    ----------
    lab:
        Lab name (``L01`` ... ``L11``).
    machines:
        Machines of the lab observed in the trace.
    samples:
        Samples collected from the lab.
    uptime_ratio:
        Lab samples / (iterations x lab machines).
    occupied_share:
        Fraction of lab samples with a (non-forgotten) session.
    cpu_idle_pct:
        Mean pairwise CPU idleness of the lab.
    ram_load_pct / swap_load_pct:
        Mean memory loads.
    disk_used_gb:
        Mean used disk.
    """

    lab: str
    machines: int
    samples: int
    uptime_ratio: float
    occupied_share: float
    cpu_idle_pct: float
    ram_load_pct: float
    swap_load_pct: float
    disk_used_gb: float


def per_lab_summary(
    trace: ColumnarTrace,
    pairs: Optional[PairwiseCpu] = None,
    *,
    threshold: float = FORGOTTEN_THRESHOLD,
) -> List[LabSummary]:
    """Aggregate the trace per lab (ordered by lab name).

    Lab membership comes from the static records in the trace metadata.
    """
    meta = trace.meta
    if meta is None:
        raise AnalysisError("per_lab_summary needs trace metadata")
    if meta.iterations_run <= 0:
        raise AnalysisError("metadata carries no iteration accounting")
    if not meta.statics:
        raise AnalysisError("metadata has no static records")
    lab_of = {mid: st.lab for mid, st in meta.statics.items()}
    labs = sorted({st.lab for st in meta.statics.values()})
    lab_index = {lab: k for k, lab in enumerate(labs)}
    # machine -> lab code vector
    codes = np.full(meta.n_machines, -1, dtype=np.int64)
    for mid, lab in lab_of.items():
        codes[mid] = lab_index[lab]
    sample_lab = codes[trace.machine_id]
    if np.any(sample_lab < 0):
        raise AnalysisError("trace contains machines without static records")

    occupied = trace.occupied_mask(threshold)
    out: List[LabSummary] = []
    pair_lab = codes[pairs.machine_id] if pairs is not None else None
    for lab in labs:
        k = lab_index[lab]
        s = sample_lab == k
        n_machines = int((codes == k).sum())
        n_samples = int(s.sum())
        if pairs is not None and pair_lab is not None:
            p = pair_lab == k
            idle = float(pairs.idle_pct[p].mean()) if p.any() else float("nan")
        else:
            idle = float("nan")
        out.append(
            LabSummary(
                lab=lab,
                machines=n_machines,
                samples=n_samples,
                uptime_ratio=n_samples / (meta.iterations_run * n_machines)
                if n_machines
                else float("nan"),
                occupied_share=float(occupied[s].mean()) if n_samples else float("nan"),
                cpu_idle_pct=idle,
                ram_load_pct=float(trace.mem[s].mean()) if n_samples else float("nan"),
                swap_load_pct=float(trace.swap[s].mean()) if n_samples else float("nan"),
                disk_used_gb=float(trace.disk_used[s].mean() / 1e9)
                if n_samples
                else float("nan"),
            )
        )
    return out
