"""Cluster-equivalence ratio: Fig 6 and the 2:1 rule (section 5.4).

Following Arpaci et al. and Kondo et al., a machine with measured CPU
idleness ``p`` over a period counts as ``p`` of a dedicated machine of
the same speed; a powered-off machine counts as 0.  To cope with fleet
heterogeneity, machines are weighted by their NBench performance index
(50% INT + 50% FP), normalised by the fleet's mean index.

The cluster-equivalence ratio over a set of probe attempts is then::

    ratio = sum(idleness_m * weight_m over sampled pairs) / attempts

The paper splits the ratio by the *raw* login state (0.26 occupied +
0.25 user-free = 0.51 total -- note 0.26 + 0.25 only reconciles with
Table 2's uptime split when forgotten sessions stay in the occupied
class, so raw classification is the default here) and plots its weekly
distribution.  The 0.51 total is the 2:1 rule: N non-dedicated machines
are worth roughly N/2 dedicated ones -- as an upper bound, since it
assumes every idle cycle is harvestable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.cpu import PairwiseCpu, pairwise_cpu
from repro.analysis.stats import binned_mean
from repro.analysis.weekly import week_bin_index
from repro.errors import AnalysisError
from repro.sim.calendar import HOUR, WEEK
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta

__all__ = ["EquivalenceResult", "cluster_equivalence", "machine_weights"]


def machine_weights(meta: TraceMeta) -> np.ndarray:
    """Per-machine performance weights, mean-normalised to 1.0.

    Machines without NBench indexes (never benchmarked) get weight 1.0,
    i.e. they count as average machines.
    """
    n = meta.n_machines
    weights = np.ones(n, dtype=float)
    perf = np.full(n, np.nan)
    for mid, static in meta.statics.items():
        if 0 <= mid < n:
            perf[mid] = static.perf_index
    valid = np.isfinite(perf)
    if valid.any():
        mean = perf[valid].mean()
        if mean <= 0:
            raise AnalysisError("non-positive mean performance index")
        weights[valid] = perf[valid] / mean
    return weights


@dataclass(frozen=True)
class EquivalenceResult:
    """Fig-6 data and headline ratios.

    Attributes
    ----------
    ratio_total:
        Overall cluster-equivalence ratio (paper: 0.51).
    ratio_occupied / ratio_free:
        Contributions of user-occupied and user-free machine time
        (paper: 0.26 / 0.25).
    weekly_hours / weekly_ratio:
        Weekly distribution of the ratio (Fig 6's curve).
    """

    ratio_total: float
    ratio_occupied: float
    ratio_free: float
    weekly_hours: np.ndarray
    weekly_ratio: np.ndarray

    @property
    def equivalent_dedicated_fraction(self) -> float:
        """Alias making the 2:1 reading explicit: N machines are worth
        ``ratio_total * N`` dedicated ones."""
        return self.ratio_total


def cluster_equivalence(
    trace: ColumnarTrace,
    meta: Optional[TraceMeta] = None,
    *,
    pairs: Optional[PairwiseCpu] = None,
    raw_login: bool = True,
    bin_seconds: float = HOUR,
) -> EquivalenceResult:
    """Compute the cluster-equivalence ratio and its weekly distribution.

    Parameters
    ----------
    trace / meta:
        The trace and its metadata (attempt accounting + NBench weights).
    pairs:
        Pre-computed pairwise CPU estimates to reuse.
    raw_login:
        Split occupied/free by raw login state (paper's Fig-6 split);
        set ``False`` to use the >= 10 h reclassification instead.
    bin_seconds:
        Width of the weekly-distribution bins.
    """
    meta = meta or trace.meta
    if meta is None:
        raise AnalysisError("cluster_equivalence needs trace metadata")
    if meta.attempts <= 0 or meta.iterations_run <= 0:
        raise AnalysisError("metadata carries no attempt accounting")
    if pairs is None:
        pairs = pairwise_cpu(trace)
    weights = machine_weights(meta)

    # Every collected sample contributes one machine-period of measured
    # idleness.  Samples with a valid predecessor use the exact pairwise
    # estimate; the remainder (first sample after a boot or a gap) fall
    # back to the boot-relative average the probe carries anyway
    # (idle / uptime) -- the paper's "measured CPU idleness over this
    # period" with the best estimator available per sample.
    with np.errstate(invalid="ignore", divide="ignore"):
        idle_frac = np.where(trace.uptime > 0, trace.idle / trace.uptime, 1.0)
    np.clip(idle_frac, 0.0, 1.0, out=idle_frac)
    idle_frac[pairs.j] = pairs.idle_frac
    contrib = idle_frac * weights[trace.machine_id]
    occupied = (
        trace.has_session if raw_login else trace.occupied_mask()
    )

    # Denominator: every probe attempt counts one machine-period of the
    # (weight-normalised) fleet, sampled or not.
    attempts = meta.attempts
    total = float(contrib.sum() / attempts)
    occ = float(contrib[occupied].sum() / attempts)
    free = float(contrib[~occupied].sum() / attempts)

    # Weekly distribution: mean contribution per attempt in each bin.
    # Attempts per bin = iterations in bin x fleet size; iterations run
    # at the sampling period, so fold their nominal times onto the week.
    n_bins = int(np.ceil(WEEK / bin_seconds))
    pair_bins = week_bin_index(trace.t, bin_seconds)
    sums = np.bincount(pair_bins, weights=contrib, minlength=n_bins)
    # per-bin attempt estimate from iteration times present in the trace
    iter_ids = np.unique(trace.iteration)
    period = meta.sample_period
    iter_bins = week_bin_index(iter_ids.astype(float) * period, bin_seconds)
    attempts_per_bin = np.bincount(iter_bins, minlength=n_bins).astype(float)
    attempts_per_bin *= meta.n_machines
    with np.errstate(invalid="ignore", divide="ignore"):
        weekly = np.where(attempts_per_bin > 0, sums / attempts_per_bin, np.nan)
    hours = np.arange(n_bins) * bin_seconds / HOUR
    return EquivalenceResult(
        ratio_total=total,
        ratio_occupied=occ,
        ratio_free=free,
        weekly_hours=hours,
        weekly_ratio=weekly,
    )
