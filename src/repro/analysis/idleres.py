"""Idle-resource inventories: memory, disk and the harvesting potential.

The paper's conclusions go beyond CPU: "Memory idleness is also
noticeable especially in machines fitted with 512 MB", "free space
storage among monitored machines is impressive", and both are proposed
for *network RAM* and *distributed backup / local data grid* schemes.
This module quantifies those claims from a trace:

- :func:`memory_idleness` -- unused physical memory per sample and
  fleet-wide (Acharya & Setia found ~50% of RAM idle on Solaris
  workstations; the paper's Windows fleet averages 41.1% unused),
- :func:`disk_idleness` -- free local disk per machine and fleet-wide,
- :func:`network_ram_potential` -- how much remote memory the user-free
  fleet offers at any instant,
- :func:`backup_capacity` -- how much replicated backup storage the free
  disk space could host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cpu import FORGOTTEN_THRESHOLD
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace

__all__ = [
    "MemoryIdleness",
    "memory_idleness",
    "DiskIdleness",
    "disk_idleness",
    "network_ram_potential",
    "backup_capacity",
]


@dataclass(frozen=True)
class MemoryIdleness:
    """Fleet memory-idleness summary.

    Attributes
    ----------
    unused_pct_mean:
        Mean unused-memory percentage across samples (paper: 41.1% =
        100 - 58.9).
    unused_mb_mean:
        Mean unused megabytes per powered-on machine.
    unused_pct_by_ram:
        Mean unused percentage keyed by installed RAM size (the paper
        singles out the 512 MB machines as the interesting donors).
    fleet_unused_gb_mean:
        Average unused memory summed over powered-on machines at a
        given instant, in GiB.
    """

    unused_pct_mean: float
    unused_mb_mean: float
    unused_pct_by_ram: Dict[int, float]
    fleet_unused_gb_mean: float


def memory_idleness(
    trace: ColumnarTrace, *, occupied_only: Optional[bool] = None
) -> MemoryIdleness:
    """Quantify unused main memory across the trace.

    Parameters
    ----------
    occupied_only:
        ``True`` restricts to occupied samples, ``False`` to free ones,
        ``None`` (default) uses all samples.
    """
    meta = trace.meta
    if meta is None:
        raise AnalysisError("memory_idleness needs trace metadata")
    mask = np.ones(len(trace), dtype=bool)
    if occupied_only is not None:
        occ = trace.occupied_mask(FORGOTTEN_THRESHOLD)
        mask = occ if occupied_only else ~occ
    if not mask.any():
        raise AnalysisError("no samples in the requested class")
    # per-sample installed RAM from the static records
    ram_mb = np.zeros(meta.n_machines)
    for mid, st in meta.statics.items():
        ram_mb[mid] = st.ram_mb
    if not ram_mb.any():
        raise AnalysisError("metadata has no per-machine RAM sizes")
    sample_ram = ram_mb[trace.machine_id[mask]]
    unused_pct = 100.0 - trace.mem[mask]
    unused_mb = unused_pct / 100.0 * sample_ram
    by_ram: Dict[int, float] = {}
    for size in np.unique(sample_ram):
        sel = sample_ram == size
        by_ram[int(size)] = float(unused_pct[sel].mean())
    # fleet-wide instantaneous unused memory: sum per iteration
    iters = trace.iteration[mask]
    n_iter = int(iters.max()) + 1
    per_iter = np.bincount(iters, weights=unused_mb, minlength=n_iter)
    live = np.bincount(iters, minlength=n_iter) > 0
    return MemoryIdleness(
        unused_pct_mean=float(unused_pct.mean()),
        unused_mb_mean=float(unused_mb.mean()),
        unused_pct_by_ram=by_ram,
        fleet_unused_gb_mean=float(per_iter[live].mean() / 1024.0),
    )


@dataclass(frozen=True)
class DiskIdleness:
    """Fleet disk-idleness summary.

    Attributes
    ----------
    free_gb_mean:
        Mean free gigabytes per machine (paper: 40.3 - 13.6 ~= 26.7 GB).
    free_fraction_mean:
        Mean free fraction of capacity.
    fleet_free_tb:
        Free space summed over the whole fleet at the last observation
        of each machine, in TB.
    """

    free_gb_mean: float
    free_fraction_mean: float
    fleet_free_tb: float


def disk_idleness(trace: ColumnarTrace) -> DiskIdleness:
    """Quantify unused local disk space across the trace."""
    free_gb = trace.disk_free / 1e9
    frac = trace.disk_free / trace.disk_total
    # last observation per machine (sorted layout)
    mids = np.unique(trace.machine_id)
    last = np.searchsorted(trace.machine_id, mids, side="right") - 1
    return DiskIdleness(
        free_gb_mean=float(free_gb.mean()),
        free_fraction_mean=float(frac.mean()),
        fleet_free_tb=float(trace.disk_free[last].sum() / 1e12),
    )


def network_ram_potential(
    trace: ColumnarTrace, *, min_donor_mb: float = 64.0
) -> Dict[str, float]:
    """Remote-memory capacity offered by user-free machines.

    A network-RAM scheme (the conclusions' suggestion for the fast LAN)
    can borrow the unused memory of powered-on, user-free machines.
    Returns the mean instantaneous donor count and donated GiB, counting
    only machines able to donate at least ``min_donor_mb``.
    """
    meta = trace.meta
    if meta is None:
        raise AnalysisError("network_ram_potential needs trace metadata")
    ram_mb = np.zeros(meta.n_machines)
    for mid, st in meta.statics.items():
        ram_mb[mid] = st.ram_mb
    free_mask = ~trace.occupied_mask(FORGOTTEN_THRESHOLD)
    unused_mb = (100.0 - trace.mem) / 100.0 * ram_mb[trace.machine_id]
    donor = free_mask & (unused_mb >= min_donor_mb)
    iters = trace.iteration
    n_iter = int(iters.max()) + 1
    donors_per_iter = np.bincount(iters, weights=donor.astype(float),
                                  minlength=n_iter)
    mb_per_iter = np.bincount(iters, weights=np.where(donor, unused_mb, 0.0),
                              minlength=n_iter)
    live = np.bincount(iters, minlength=n_iter) > 0
    if not live.any():
        raise AnalysisError("trace has no live iterations")
    return {
        "mean_donors": float(donors_per_iter[live].mean()),
        "mean_donated_gb": float(mb_per_iter[live].mean() / 1024.0),
    }


def backup_capacity(
    trace: ColumnarTrace, *, replication: int = 3, reserve_fraction: float = 0.2
) -> Dict[str, float]:
    """Distributed-backup capacity of the fleet's free disk space.

    The conclusions propose "distributed backups or local data grids".
    With ``replication``-way redundancy (a serverless-file-system-style
    scheme, cf. Bolosky et al.) and a safety ``reserve_fraction`` left on
    each disk, returns the usable logical capacity in TB.
    """
    if replication < 1:
        raise AnalysisError("replication factor must be >= 1")
    if not 0.0 <= reserve_fraction < 1.0:
        raise AnalysisError("reserve fraction must be in [0, 1)")
    mids = np.unique(trace.machine_id)
    last = np.searchsorted(trace.machine_id, mids, side="right") - 1
    usable = trace.disk_free[last] * (1.0 - reserve_fraction)
    raw_tb = float(usable.sum() / 1e12)
    return {
        "raw_free_tb": float(trace.disk_free[last].sum() / 1e12),
        "usable_raw_tb": raw_tb,
        "logical_tb": raw_tb / replication,
        "machines": float(mids.size),
    }
