"""Opening-period partition: idleness by open / night / weekend time.

Section 5.3: "apart from weekends and the night interval between 4 am
and 8 am, absolute system idleness is limited.  However, even on working
hours, idleness levels are quite high."  This module partitions a trace
by the calendar and quantifies that statement:

- ``open``: classroom open hours (weekdays 08:00-04:00, Sat 08:00-21:00),
- ``night``: the 04:00-08:00 closure after weekday openings,
- ``weekend``: Saturday 21:00 through Monday 08:00.

Each partition reports sample share, CPU idleness, and the fraction of
the fleet powered on -- the inputs a harvesting scheduler would use to
decide *when* aggressive scavenging pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cpu import PairwiseCpu
from repro.errors import AnalysisError
from repro.sim.calendar import DAY, HOUR, WEEK
from repro.traces.columnar import ColumnarTrace

__all__ = ["PeriodSlice", "partition_by_period", "period_of_week_second"]


@dataclass(frozen=True)
class PeriodSlice:
    """Aggregates of one calendar partition.

    Attributes
    ----------
    name:
        ``"open"``, ``"night"`` or ``"weekend"``.
    sample_share:
        Fraction of collected samples falling in the partition.
    cpu_idle_pct:
        Mean pairwise CPU idleness of the partition (NaN if empty).
    mean_powered_on:
        Average powered-on machines per iteration inside the partition.
    """

    name: str
    sample_share: float
    cpu_idle_pct: float
    mean_powered_on: float


def period_of_week_second(sow: np.ndarray) -> np.ndarray:
    """Classify seconds-of-week into 0=open, 1=night, 2=weekend.

    ``sow`` is seconds since Monday 00:00.  Mirrors
    :class:`~repro.sim.calendar.AcademicCalendar`'s opening rules.
    """
    sow = np.asarray(sow, dtype=float) % WEEK
    day = (sow // DAY).astype(np.int64)        # 0=Mon .. 6=Sun
    sod = sow - day * DAY
    out = np.zeros(sow.shape, dtype=np.int64)

    # weekday nights: 04:00-08:00 on Tue..Sat (after Mon..Fri openings)
    night = (day >= 1) & (day <= 5) & (sod >= 4 * HOUR) & (sod < 8 * HOUR)
    # Monday 00:00-08:00 belongs to the weekend closure (Sunday closed)
    monday_morning = (day == 0) & (sod < 8 * HOUR)
    weekend = (
        ((day == 5) & (sod >= 21 * HOUR))      # Sat 21:00 ->
        | (day == 6)                            # all Sunday
        | monday_morning                        # -> Mon 08:00
    )
    out[night] = 1
    out[weekend] = 2
    # Saturday open hours are 08:00-21:00; the 04:00-08:00 Saturday slot
    # is already marked night above, the rest of Saturday is open.
    return out


def partition_by_period(
    trace: ColumnarTrace, pairs: PairwiseCpu
) -> Dict[str, PeriodSlice]:
    """Partition samples and pairwise idleness by calendar period."""
    if len(trace) == 0:
        raise AnalysisError("empty trace")
    names = ("open", "night", "weekend")
    sample_period = trace.meta.sample_period if trace.meta else 900.0

    sample_cls = period_of_week_second(trace.t % WEEK)
    pair_cls = period_of_week_second(pairs.t % WEEK)
    n = len(trace)

    # powered-on per iteration, then classify iterations by nominal time
    iters = trace.iteration
    n_iter = int(iters.max()) + 1
    on = np.bincount(iters, minlength=n_iter)
    live = np.flatnonzero(on > 0)
    iter_cls = period_of_week_second(live.astype(float) * sample_period)

    out: Dict[str, PeriodSlice] = {}
    for code, name in enumerate(names):
        s_mask = sample_cls == code
        p_mask = pair_cls == code
        i_mask = iter_cls == code
        out[name] = PeriodSlice(
            name=name,
            sample_share=float(s_mask.mean()),
            cpu_idle_pct=float(pairs.idle_pct[p_mask].mean())
            if p_mask.any()
            else float("nan"),
            mean_powered_on=float(on[live][i_mask].mean())
            if i_mask.any()
            else float("nan"),
        )
    total = sum(s.sample_share for s in out.values())
    if abs(total - 1.0) > 1e-9:
        raise AnalysisError("period partition does not cover the trace")
    return out
