"""Shared statistical helpers for the analysis modules."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "weighted_mean",
    "availability_nines",
    "binned_mean",
    "histogram_share",
]


def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """Weighted arithmetic mean; raises on zero total weight."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise AnalysisError("weighted_mean needs positive total weight")
    return float(np.dot(values, weights) / total)


def availability_nines(ratio: np.ndarray | float) -> np.ndarray | float:
    """Availability expressed in "nines": ``-log10(1 - ratio)``.

    One nine = 0.9 availability, two nines = 0.99, etc (Douceur's unit,
    used in the paper's Fig 4).  A ratio of 1.0 maps to ``inf``; negative
    ratios are invalid.
    """
    r = np.asarray(ratio, dtype=float)
    if np.any((r < 0) | (r > 1)):
        raise AnalysisError("availability ratios must lie in [0, 1]")
    with np.errstate(divide="ignore"):
        out = -np.log10(1.0 - r)
    return float(out) if np.isscalar(ratio) else out


def binned_mean(
    bin_index: np.ndarray, values: np.ndarray, n_bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean of ``values`` per integer bin, vectorised with ``bincount``.

    Returns ``(means, counts)``; bins with no samples yield NaN means.
    """
    if bin_index.shape != values.shape:
        raise AnalysisError("bin_index and values must have equal shapes")
    if np.any((bin_index < 0) | (bin_index >= n_bins)):
        raise AnalysisError("bin index out of range")
    counts = np.bincount(bin_index, minlength=n_bins).astype(float)
    sums = np.bincount(bin_index, weights=values, minlength=n_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts
    return means, counts


def histogram_share(
    values: np.ndarray, edges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of ``values`` over ``edges`` plus each bin's value share.

    Returns ``(counts, share_of_total_value)`` -- e.g. session-length
    bins and the share of *cumulated uptime* each bin holds (Fig 4-right
    is stated in both units).
    """
    values = np.asarray(values, dtype=float)
    counts, _ = np.histogram(values, bins=edges)
    sums, _ = np.histogram(values, bins=edges, weights=values)
    total = values.sum()
    share = sums / total if total > 0 else np.zeros_like(sums)
    return counts, share
