"""Interactive-session analysis: Fig 2 and the forgotten-login heuristic.

Section 4.2 discovered that users forget to log out: of 277,513 samples
taken on machines with an open session, 87,830 belonged to sessions at
least 10 hours old.  The authors grouped login samples by *relative hour
since logon* and observed that mean CPU idleness first exceeds 99% in
the [10, 11) hour -- evidence that by then nobody is actually at the
keyboard -- and consequently reclassified samples with session age
>= 10 h as captured on non-occupied machines.

This module reproduces that analysis: the relative-hour buckets with
their mean idleness (Fig 2), the forgotten-sample accounting, and a full
per-session reconstruction from the trace (used by tests to validate
against the simulator's ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.cpu import FORGOTTEN_THRESHOLD, PairwiseCpu
from repro.analysis.stats import binned_mean
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace

__all__ = [
    "SessionBuckets",
    "relative_hour_buckets",
    "first_bucket_above",
    "ForgottenStats",
    "forgotten_stats",
    "LoginSession",
    "reconstruct_login_sessions",
]


@dataclass(frozen=True)
class SessionBuckets:
    """Fig-2 data: login samples bucketed by relative session hour.

    ``counts[h]`` is the number of login samples whose session was
    ``h``..``h+1`` hours old; ``idle_pct[h]`` the mean CPU idleness of
    the intervals ending at those samples (NaN for empty buckets).
    """

    counts: np.ndarray
    idle_pct: np.ndarray

    @property
    def hours(self) -> np.ndarray:
        """Left edge of each bucket, hours."""
        return np.arange(self.counts.shape[0], dtype=float)


def relative_hour_buckets(
    trace: ColumnarTrace,
    pairs: PairwiseCpu,
    *,
    max_hours: int = 24,
) -> SessionBuckets:
    """Group login samples by relative session hour (Fig 2).

    Only pairs whose ending sample carries a session enter the buckets
    (the idleness of the preceding 15-minute interval is attributed to
    the session's age at the ending sample).  Ages beyond ``max_hours``
    are folded into the last bucket.
    """
    if max_hours <= 0:
        raise AnalysisError("max_hours must be positive")
    age = trace.session_age[pairs.j]
    with_login = pairs.raw_login & np.isfinite(age) & (age >= 0)
    if not with_login.any():
        raise AnalysisError("no login samples in trace")
    hours = np.minimum((age[with_login] / 3600.0).astype(np.int64), max_hours - 1)
    means, counts = binned_mean(hours, pairs.idle_pct[with_login], max_hours)
    return SessionBuckets(counts=counts.astype(np.int64), idle_pct=means)


def first_bucket_above(buckets: SessionBuckets, level: float = 99.0) -> Optional[int]:
    """First relative hour whose mean idleness reaches ``level`` percent.

    The paper finds hour 10 (the [10-11) interval); returns ``None`` when
    no bucket qualifies.
    """
    valid = np.isfinite(buckets.idle_pct)
    hits = np.flatnonzero(valid & (buckets.idle_pct >= level))
    return int(hits[0]) if hits.size else None


@dataclass(frozen=True)
class ForgottenStats:
    """Section-4.2 sample accounting.

    Attributes
    ----------
    login_samples:
        Samples carrying any open session (paper: 277,513).
    forgotten_samples:
        Of those, samples with session age >= threshold (paper: 87,830).
    threshold:
        The reclassification threshold, seconds.
    """

    login_samples: int
    forgotten_samples: int
    threshold: float

    @property
    def occupied_samples(self) -> int:
        """Login samples kept as genuinely occupied (paper: 189,683)."""
        return self.login_samples - self.forgotten_samples

    @property
    def forgotten_fraction(self) -> float:
        """Share of login samples reclassified (paper: 0.316)."""
        if self.login_samples == 0:
            return float("nan")
        return self.forgotten_samples / self.login_samples


def forgotten_stats(
    trace: ColumnarTrace, *, threshold: float = FORGOTTEN_THRESHOLD
) -> ForgottenStats:
    """Count login samples and those older than the forgotten threshold."""
    login = trace.has_session
    age = trace.session_age
    forgotten = login & (age >= threshold)
    return ForgottenStats(
        login_samples=int(login.sum()),
        forgotten_samples=int(forgotten.sum()),
        threshold=threshold,
    )


@dataclass(frozen=True)
class LoginSession:
    """One interactive session reconstructed from the trace.

    Attributes
    ----------
    machine_id / username:
        Who, where.
    logon_time:
        Start reported by the probe (exact -- Windows knows it).
    first_seen / last_seen:
        Collection times of the first and last sample showing the session.
    n_samples:
        Number of samples the session appeared in.
    """

    machine_id: int
    username: str
    logon_time: float
    first_seen: float
    last_seen: float
    n_samples: int

    @property
    def observed_age(self) -> float:
        """Session age at the last sample that saw it, seconds."""
        return self.last_seen - self.logon_time


def reconstruct_login_sessions(trace: ColumnarTrace) -> List[LoginSession]:
    """Rebuild distinct interactive sessions from the sampled trace.

    A session is identified by ``(machine, logon_time)`` -- the probe
    reports the logon time, so consecutive samples of one session agree
    on it exactly.  Sessions shorter than the sampling period may be
    missed entirely; that is inherent to the methodology (section 4.2).
    """
    has = trace.has_session
    if not has.any():
        return []
    idx = np.flatnonzero(has)
    m = trace.machine_id[idx]
    start = trace.session_start[idx]
    # Trace is sorted by (machine, t); a session boundary is any change
    # of machine or of logon time.
    boundary = np.ones(idx.shape[0], dtype=bool)
    boundary[1:] = (m[1:] != m[:-1]) | (start[1:] != start[:-1])
    group = np.cumsum(boundary) - 1
    n_groups = int(group[-1]) + 1
    firsts = np.zeros(n_groups, dtype=np.int64)
    firsts[group[::-1]] = idx[::-1]  # first index per group
    lasts = np.zeros(n_groups, dtype=np.int64)
    lasts[group] = idx               # last index per group
    counts = np.bincount(group, minlength=n_groups)
    out: List[LoginSession] = []
    # usernames live outside the columnar arrays; recover via the store
    # is not available here, so sessions are keyed by machine+logon only.
    for g in range(n_groups):
        fi, li = firsts[g], lasts[g]
        out.append(
            LoginSession(
                machine_id=int(trace.machine_id[fi]),
                username="",
                logon_time=float(trace.session_start[fi]),
                first_seen=float(trace.t[fi]),
                last_seen=float(trace.t[li]),
                n_samples=int(counts[g]),
            )
        )
    return out
