"""Weekly resource profiles: Fig 5 (and the x-axis of Fig 6).

The paper folds the 11-week trace onto one week (Monday 00:00 to Sunday
24:00) and plots, per time-of-week bin:

- average CPU idleness, RAM load and swap load (Fig 5, left),
- average network receive and send rates (Fig 5, right).

Signature features to reproduce: the night (04:00-08:00) and weekend
plateaus of ~100% idleness, RAM never dropping below ~50%, the swap
curve tracking RAM with damped high frequencies, receive rates several
times the send rates, and the Tuesday-afternoon idleness dip below 91%
caused by the CPU-heavy practical class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.cpu import PairwiseCpu
from repro.analysis.stats import binned_mean
from repro.errors import AnalysisError
from repro.sim.calendar import HOUR, WEEK
from repro.traces.columnar import ColumnarTrace

__all__ = ["WeeklyProfiles", "weekly_profiles", "week_bin_index"]


def week_bin_index(t: np.ndarray, bin_seconds: float) -> np.ndarray:
    """Map absolute times to time-of-week bins (week starts Monday 00:00)."""
    if bin_seconds <= 0 or bin_seconds > WEEK:
        raise AnalysisError("bin size must be in (0, one week]")
    return ((np.asarray(t) % WEEK) / bin_seconds).astype(np.int64)


@dataclass(frozen=True)
class WeeklyProfiles:
    """Fig-5 data: per time-of-week-bin fleet averages.

    All arrays have ``n_bins`` entries; bins with no samples are NaN.
    ``bin_hours`` gives each bin's left edge in hours since Monday 00:00.
    """

    bin_seconds: float
    cpu_idle_pct: np.ndarray
    ram_load_pct: np.ndarray
    swap_load_pct: np.ndarray
    sent_bps: np.ndarray
    recv_bps: np.ndarray
    sample_counts: np.ndarray

    @property
    def n_bins(self) -> int:
        return self.cpu_idle_pct.shape[0]

    @property
    def bin_hours(self) -> np.ndarray:
        """Left edge of each bin, hours since Monday 00:00."""
        return np.arange(self.n_bins) * self.bin_seconds / HOUR

    def minimum_idleness(self) -> tuple[float, float]:
        """``(hour_of_week, idle_pct)`` of the deepest idleness dip.

        The paper finds it on Tuesday afternoon, below 91%.
        """
        valid = np.isfinite(self.cpu_idle_pct)
        if not valid.any():
            raise AnalysisError("no CPU data in weekly profile")
        k = int(np.nanargmin(self.cpu_idle_pct))
        return float(self.bin_hours[k]), float(self.cpu_idle_pct[k])

    def weekday_mask(self, weekday: int) -> np.ndarray:
        """Boolean bin mask selecting one weekday (0 = Monday)."""
        h = self.bin_hours
        return (h >= weekday * 24.0) & (h < (weekday + 1) * 24.0)


def weekly_profiles(
    trace: ColumnarTrace,
    pairs: PairwiseCpu,
    *,
    bin_seconds: float = HOUR,
) -> WeeklyProfiles:
    """Fold the trace onto one week and average each metric per bin.

    CPU idleness and network rates come from the pairwise estimates
    (binned at the ending sample's time); RAM and swap are instantaneous
    sample values.
    """
    n_bins = int(np.ceil(WEEK / bin_seconds))
    sample_bins = week_bin_index(trace.t, bin_seconds)
    ram, counts = binned_mean(sample_bins, trace.mem, n_bins)
    swap, _ = binned_mean(sample_bins, trace.swap, n_bins)

    pair_bins = week_bin_index(pairs.t, bin_seconds)
    idle, _ = binned_mean(pair_bins, pairs.idle_pct, n_bins)
    sent_rate = (trace.sent[pairs.j] - trace.sent[pairs.i]) / pairs.gap
    recv_rate = (trace.recv[pairs.j] - trace.recv[pairs.i]) / pairs.gap
    np.clip(sent_rate, 0.0, None, out=sent_rate)
    np.clip(recv_rate, 0.0, None, out=recv_rate)
    sent, _ = binned_mean(pair_bins, sent_rate, n_bins)
    recv, _ = binned_mean(pair_bins, recv_rate, n_bins)

    return WeeklyProfiles(
        bin_seconds=float(bin_seconds),
        cpu_idle_pct=idle,
        ram_load_pct=ram,
        swap_load_pct=swap,
        sent_bps=sent,
        recv_bps=recv,
        sample_counts=counts.astype(np.int64),
    )
