"""Machine stability: sections 5.2.1 (uptime sessions) and 5.2.2 (SMART).

**Machine sessions** -- a session is the activity between a boot and the
matching shutdown.  DDC can only see sessions through samples: a new
session is detected when a machine's uptime is too small to contain the
previous sample (a reboot happened), and the session's length is
estimated by the last uptime observed in the run of samples.  Both of
the paper's caveats are reproduced: sessions shorter than the sampling
period can be missed entirely, and consecutive reboots within one gap
collapse into one detected session.

**SMART power cycles** -- the disk's power-cycle count and power-on-hours
counters integrate the machine's whole life, revealing the short cycles
sampling misses.  The paper reports 13,871 cycles over the experiment
(1.07 per machine-day, 30% above the session count), an in-experiment
average of 13 h 54 m uptime per cycle, and a whole-life average of only
6.46 h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import histogram_share
from repro.errors import AnalysisError
from repro.traces.columnar import ColumnarTrace
from repro.traces.records import TraceMeta

__all__ = [
    "MachineSessions",
    "detect_machine_sessions",
    "SmartStats",
    "smart_power_cycle_stats",
]


@dataclass(frozen=True)
class MachineSessions:
    """Detected machine sessions (boot -> shutdown), section 5.2.1.

    Parallel arrays, one entry per detected session:

    - ``machine_id``: owner machine,
    - ``first_t`` / ``last_t``: collection times bounding the session's
      samples,
    - ``length``: estimated session length = uptime at the last sample
      (the best DDC can do; always an underestimate by at most one
      sampling period plus the unseen tail),
    - ``n_samples``: samples within the session.
    """

    machine_id: np.ndarray
    first_t: np.ndarray
    last_t: np.ndarray
    length: np.ndarray
    n_samples: np.ndarray

    def __len__(self) -> int:
        return self.machine_id.shape[0]

    @property
    def mean_length(self) -> float:
        """Mean session length, seconds (paper: 15 h 55 m)."""
        return float(self.length.mean())

    @property
    def std_length(self) -> float:
        """Standard deviation of session length (paper: 26.65 h)."""
        return float(self.length.std())

    def length_histogram(
        self, *, max_hours: float = 96.0, bin_hours: float = 4.0
    ) -> Dict[str, np.ndarray]:
        """Fig-4-right: distribution of session lengths up to 96 h.

        Returns bin edges (hours), counts per bin, and the share of
        sessions / of cumulated uptime falling at or below ``max_hours``
        (paper: 98.7% of sessions, 87.93% of uptime).
        """
        hours = self.length / 3600.0
        edges = np.arange(0.0, max_hours + bin_hours, bin_hours)
        counts, _ = histogram_share(hours[hours <= max_hours], edges)
        return {
            "edges_h": edges,
            "counts": counts,
            "sessions_share": np.array([float((hours <= max_hours).mean())]),
            "uptime_share": np.array(
                [float(self.length[hours <= max_hours].sum() / self.length.sum())]
            ),
        }


def detect_machine_sessions(trace: ColumnarTrace) -> MachineSessions:
    """Detect machine sessions from uptime resets, as DDC does.

    Works on the sorted columnar layout: a session boundary occurs at a
    machine change or wherever :meth:`ColumnarTrace.reboot_between`
    flags a reboot.  Gaps longer than the pairing cap also start a new
    session -- if a machine vanished for hours, its uptime tells whether
    it is the same session, so the boundary test uses the uptime-vs-gap
    comparison for *any* gap length, exactly like the original.
    """
    n = len(trace)
    if n == 0:
        raise AnalysisError("empty trace")
    same = trace.machine_id[1:] == trace.machine_id[:-1]
    gap = trace.t[1:] - trace.t[:-1]
    # Reboot iff the later uptime cannot contain the earlier sample.
    cont = trace.uptime[1:] + 30.0 >= trace.uptime[:-1] + gap
    boundary = np.ones(n, dtype=bool)
    boundary[1:] = ~(same & cont)
    group = np.cumsum(boundary) - 1
    n_groups = int(group[-1]) + 1
    idx = np.arange(n)
    firsts = np.zeros(n_groups, dtype=np.int64)
    firsts[group[::-1]] = idx[::-1]
    lasts = np.zeros(n_groups, dtype=np.int64)
    lasts[group] = idx
    return MachineSessions(
        machine_id=trace.machine_id[firsts].astype(np.int64),
        first_t=trace.t[firsts].copy(),
        last_t=trace.t[lasts].copy(),
        length=trace.uptime[lasts].copy(),
        n_samples=np.bincount(group, minlength=n_groups).astype(np.int64),
    )


@dataclass(frozen=True)
class SmartStats:
    """Section-5.2.2 SMART aggregates.

    Attributes
    ----------
    experiment_cycles:
        Disk power cycles accumulated during the experiment, fleet-wide
        (paper: 13,871).
    cycles_per_machine_mean / cycles_per_machine_std:
        Per-machine experiment cycles (paper: 82.57 +- 37.05).
    cycles_per_day:
        Cycles per machine-day (paper: 1.07).
    uptime_per_cycle_h_mean / uptime_per_cycle_h_std:
        In-experiment power-on hours per cycle (paper: 13.9 h +- ~8 h).
    life_uptime_per_cycle_h_mean / life_uptime_per_cycle_h_std:
        Whole-life hours per cycle (paper: 6.46 h +- 4.78 h).
    """

    experiment_cycles: int
    cycles_per_machine_mean: float
    cycles_per_machine_std: float
    cycles_per_day: float
    uptime_per_cycle_h_mean: float
    uptime_per_cycle_h_std: float
    life_uptime_per_cycle_h_mean: float
    life_uptime_per_cycle_h_std: float

    def cycle_excess_over_sessions(self, detected_sessions: int) -> float:
        """How many more power cycles SMART saw than session detection
        (paper: ~+30%, the short-cycle blind spot)."""
        if detected_sessions <= 0:
            return float("nan")
        return self.experiment_cycles / detected_sessions - 1.0


def smart_power_cycle_stats(
    trace: ColumnarTrace,
    meta: Optional[TraceMeta] = None,
    *,
    days: Optional[float] = None,
) -> SmartStats:
    """Aggregate the SMART counters over the experiment.

    Per machine, the experiment's cycle count is the difference between
    the last and first sampled power-cycle counter (plus one for the boot
    that produced the first sample -- that cycle predates the first
    observation by construction, matching the paper's per-boot counting).
    """
    meta = meta or trace.meta
    if days is None:
        if meta is None:
            raise AnalysisError("need experiment length or metadata")
        days = meta.horizon / 86400.0
    mids = np.unique(trace.machine_id)
    # first/last index per machine in the sorted layout
    first_of = np.searchsorted(trace.machine_id, mids, side="left")
    last_of = np.searchsorted(trace.machine_id, mids, side="right") - 1
    d_cycles = trace.cycles[last_of] - trace.cycles[first_of] + 1
    d_poh = trace.poh[last_of] - trace.poh[first_of]
    with np.errstate(invalid="ignore", divide="ignore"):
        upc = np.where(d_cycles > 0, d_poh / np.maximum(d_cycles, 1), np.nan)
    life_upc = trace.poh[last_of] / np.maximum(trace.cycles[last_of], 1)
    n_machines = meta.n_machines if meta is not None else mids.shape[0]
    total = int(d_cycles.sum())
    valid = np.isfinite(upc)
    return SmartStats(
        experiment_cycles=total,
        cycles_per_machine_mean=total / n_machines,
        cycles_per_machine_std=float(d_cycles.std()),
        cycles_per_day=total / n_machines / days,
        uptime_per_cycle_h_mean=float(upc[valid].mean()),
        uptime_per_cycle_h_std=float(upc[valid].std()),
        life_uptime_per_cycle_h_mean=float(life_upc.mean()),
        life_uptime_per_cycle_h_std=float(life_upc.std()),
    )
