"""Reporting: ASCII tables, figure series export, paper comparisons.

- :mod:`repro.report.paperdata` -- the paper's published numbers, as
  structured constants (the ground truth every bench compares against),
- :mod:`repro.report.tables` -- fixed-width table rendering,
- :mod:`repro.report.series` -- text sparklines / CSV export of figure
  series,
- :mod:`repro.report.experiments` -- the run-everything harness that
  regenerates all tables and figures from one trace,
- :mod:`repro.report.faults` -- injected-vs-observed failure ledgers for
  fault-injected runs.
"""

from repro.report.paperdata import PAPER
from repro.report.tables import Table, render_comparison
from repro.report.series import render_sparkline, series_to_csv
from repro.report.experiments import ExperimentReport, generate_report
from repro.report.faults import fault_rows, render_fault_report

__all__ = [
    "PAPER",
    "Table",
    "render_comparison",
    "render_sparkline",
    "series_to_csv",
    "ExperimentReport",
    "generate_report",
    "fault_rows",
    "render_fault_report",
]
