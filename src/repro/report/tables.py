"""Fixed-width ASCII table rendering.

Small, dependency-free table formatter used by the benchmark harness and
the examples to print paper-style tables and paper-vs-measured
comparisons.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "render_comparison", "fmt"]

Cell = Union[str, int, float, None]


def fmt(value: Cell, ndigits: int = 2) -> str:
    """Format one cell: floats rounded, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


class Table:
    """A fixed-width text table.

    >>> t = Table(["lab", "cpu"])
    >>> t.add_row(["L01", "P4 2.4"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    lab | cpu
    ----+-------
    L01 | P4 2.4
    """

    def __init__(self, headers: Sequence[str], *, ndigits: int = 2):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = list(headers)
        self.ndigits = ndigits
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; must match the header width."""
        row = [fmt(c, self.ndigits) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as fixed-width text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        sep = "-+-".join("-" * w for w in widths)
        return "\n".join([line(self.headers), sep, *map(line, self.rows)])


def render_comparison(
    rows: Sequence[tuple],
    *,
    title: Optional[str] = None,
    ndigits: int = 2,
) -> str:
    """Render ``(metric, paper, measured)`` rows with a deviation column.

    Deviation is relative when the paper value is nonzero, absolute
    otherwise.  This is the canonical output format of every bench.
    """
    table = Table(["metric", "paper", "measured", "deviation"], ndigits=ndigits)
    for metric, paper, measured in rows:
        if paper is None or measured is None:
            dev = "-"
        elif isinstance(paper, (int, float)) and float(paper) != 0.0:
            dev = f"{100.0 * (float(measured) - float(paper)) / abs(float(paper)):+.1f}%"
        else:
            dev = f"{float(measured) - float(paper):+.3g}"
        table.add_row([metric, paper, measured, dev])
    body = table.render()
    if title:
        return f"{title}\n{'=' * len(title)}\n{body}"
    return body
