"""The paper's published numbers, as structured constants.

Everything the evaluation section reports is transcribed here so that
benchmarks and EXPERIMENTS.md compare measured values against the same
source of truth.  Section references are to *Resource Usage of Windows
Computer Laboratories* (Domingues, Marques & Silva, ICPP 2005).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["PaperNumbers", "PAPER"]


@dataclass(frozen=True)
class PaperNumbers:
    """All headline numbers of the paper's evaluation."""

    # -- experiment scale (sections 4, 5) ------------------------------
    n_machines: int = 169
    n_labs: int = 11
    days: int = 77
    sample_period_min: float = 15.0
    iterations: int = 6883
    samples: int = 583653
    login_samples_raw: int = 277513
    forgotten_samples: int = 87830
    forgotten_threshold_h: float = 10.0

    # -- Table 2 (by login state, after reclassification) --------------
    #: samples per class: no-login / with-login / both
    t2_samples: Mapping[str, int] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 393970, "with_login": 189683, "both": 583653}
        )
    )
    t2_uptime_pct: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 33.9, "with_login": 16.3, "both": 50.2}
        )
    )
    t2_cpu_idle_pct: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 99.7, "with_login": 94.2, "both": 97.9}
        )
    )
    t2_ram_load_pct: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 54.8, "with_login": 67.6, "both": 58.9}
        )
    )
    t2_swap_load_pct: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 25.7, "with_login": 32.8, "both": 28.0}
        )
    )
    t2_disk_used_gb: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 13.6, "with_login": 13.6, "both": 13.6}
        )
    )
    t2_sent_bps: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 255.3, "with_login": 2601.8, "both": 1071.9}
        )
    )
    t2_recv_bps: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(
            {"no_login": 359.2, "with_login": 8662.1, "both": 3057.9}
        )
    )

    # -- Table 1 fleet totals (section 4.1) ----------------------------
    total_ram_gb: float = 56.62
    total_disk_tb: float = 6.66
    avg_nbench_int: float = 25.5
    avg_nbench_fp: float = 24.6

    # -- Fig 2 (section 4.2) -------------------------------------------
    fig2_first_hour_above_99: int = 10

    # -- Fig 3 (section 5.1) -------------------------------------------
    fig3_avg_powered_on: float = 84.87
    fig3_avg_user_free: float = 57.29

    # -- Fig 4 left (section 5.1) ---------------------------------------
    fig4_above_05: int = 30
    fig4_above_08_max: int = 10   # "less than 10"
    fig4_above_09: int = 0

    # -- Fig 4 right / section 5.2.1 -------------------------------------
    machine_sessions: int = 10688
    session_mean_h: float = 15.92       # 15 h 55 m
    session_std_h: float = 26.65
    sessions_le_96h_share: float = 0.987
    uptime_le_96h_share: float = 0.8793

    # -- section 5.2.2 (SMART) -------------------------------------------
    smart_cycles: int = 13871
    smart_cycles_per_machine: float = 82.57
    smart_cycles_per_machine_std: float = 37.05
    smart_cycles_per_day: float = 1.07
    smart_cycle_excess: float = 0.30    # "30% higher than machine sessions"
    uptime_per_cycle_h: float = 13.9    # 13 h 54 m
    uptime_per_cycle_std_h: float = 8.0
    life_uptime_per_cycle_h: float = 6.46
    life_uptime_per_cycle_std_h: float = 4.78

    # -- Fig 5 (section 5.3) ---------------------------------------------
    fig5_tuesday_dip_below_pct: float = 91.0
    fig5_min_idleness_pct: float = 90.0   # "never drops below 90%"
    fig5_ram_floor_pct: float = 50.0      # "RAM load never falls below 50%"

    # -- Fig 6 (section 5.4) ----------------------------------------------
    equivalence_total: float = 0.51
    equivalence_occupied: float = 0.26
    equivalence_free: float = 0.25

    # -- comparisons quoted from related work ------------------------------
    heap_windows_server_idle_pct: float = 95.0
    heap_unix_server_idle_pct: float = 85.0
    bolosky_corporate_cpu_usage_pct: float = 15.0

    @property
    def attempts(self) -> int:
        """Probe attempts = iterations x machines (1,163,227)."""
        return self.iterations * self.n_machines

    @property
    def response_rate(self) -> float:
        """Samples / attempts (50.2%)."""
        return self.samples / self.attempts

    @property
    def raw_login_share(self) -> float:
        """Raw login samples / collected samples (47.5%)."""
        return self.login_samples_raw / self.samples

    @property
    def forgotten_fraction_of_login(self) -> float:
        """Forgotten samples / raw login samples (31.6%)."""
        return self.forgotten_samples / self.login_samples_raw


#: Singleton instance used throughout benches and reports.
PAPER = PaperNumbers()
