"""Figure series export: text sparklines and CSV.

The paper's figures are line plots; in a terminal-first reproduction we
render each series as a Unicode sparkline (for eyeballing shape) and
export exact values as CSV for external plotting.
"""

from __future__ import annotations

import io
from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["render_sparkline", "series_to_csv"]

_BARS = " ▁▂▃▄▅▆▇█"


def render_sparkline(
    values: Sequence[float] | np.ndarray,
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width: Optional[int] = None,
) -> str:
    """Render a series as a Unicode sparkline.

    NaNs render as spaces.  ``lo``/``hi`` pin the scale (useful when
    comparing two sparklines); ``width`` downsamples by averaging.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("sparkline takes a 1-D series")
    if width is not None and width > 0 and arr.size > width:
        # average consecutive chunks
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [np.nanmean(arr[a:b]) if b > a else np.nan for a, b in zip(edges, edges[1:])]
        )
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    vlo = float(finite.min()) if lo is None else float(lo)
    vhi = float(finite.max()) if hi is None else float(hi)
    span = vhi - vlo
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(_BARS[4])
            continue
        k = int(round((v - vlo) / span * (len(_BARS) - 2))) + 1
        out.append(_BARS[max(1, min(len(_BARS) - 1, k))])
    return "".join(out)


def series_to_csv(
    columns: Mapping[str, Sequence[float] | np.ndarray],
    *,
    float_format: str = "%.6g",
) -> str:
    """Serialise named, equal-length series as CSV text."""
    if not columns:
        raise ValueError("series_to_csv needs at least one column")
    names = list(columns)
    arrays = [np.asarray(columns[n], dtype=float) for n in names]
    n = arrays[0].shape[0]
    if any(a.shape != (n,) for a in arrays):
        raise ValueError("all series must be 1-D with equal length")
    buf = io.StringIO()
    buf.write(",".join(names) + "\n")
    for k in range(n):
        buf.write(
            ",".join(
                "" if not np.isfinite(a[k]) else float_format % a[k] for a in arrays
            )
            + "\n"
        )
    return buf.getvalue()
