"""Recovery run-directory status reporting.

Renders what the crash-safe persistence layer left behind in a run
directory: the checkpoint ladder, the journal segment chain and the
quarantine ledger.  A directory holding a campaign manifest (a sharded
supervised run, see ``docs/shard_recovery.md``) is reported as a
campaign: the manifest's per-shard status table plus one nested
per-shard status each.  Everything here is **read-only** -- unlike the
resume path (:func:`repro.recovery.journal.scan_journal`), a status
report never moves damaged artefacts into quarantine; it only describes
them, so inspecting a crashed run does not alter the evidence the
resume will act on.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import JournalError
from repro.recovery.journal import Quarantine, decode_line
from repro.recovery.manifest import CampaignManifest, is_campaign_dir
from repro.recovery.runtime import RecoveryConfig, shard_dir
from repro.report.tables import Table

__all__ = ["campaign_status", "recovery_status", "render_recovery_report"]


def _checkpoint_rows(ckpt_dir: Path) -> List[dict]:
    rows = []
    if not ckpt_dir.is_dir():
        return rows
    for path in sorted(ckpt_dir.glob("ckpt-*.ckpt")):
        row: Dict[str, object] = {"file": path.name,
                                  "bytes": path.stat().st_size}
        try:
            with open(path, "rb") as fh:
                header = json.loads(fh.readline())
                payload = fh.read()
            row.update(iteration=header.get("iteration"),
                       sim_now=header.get("sim_now"),
                       version=header.get("v"))
            crc = format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")
            ok = (len(payload) == header.get("payload_len")
                  and crc == header.get("payload_crc"))
            row["status"] = "ok" if ok else "corrupt"
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            row["status"] = "corrupt"
        rows.append(row)
    for tmp in sorted(ckpt_dir.glob("*.tmp")):
        rows.append({"file": tmp.name, "bytes": tmp.stat().st_size,
                     "status": "stale_tmp"})
    return rows


def _segment_rows(journal_dir: Path) -> List[dict]:
    rows = []
    if not journal_dir.is_dir():
        return rows
    for path in sorted(journal_dir.glob("segment-*.jsonl")):
        row: Dict[str, object] = {"file": path.name,
                                  "bytes": path.stat().st_size}
        raw = path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        torn = bool(lines[-1].strip())  # bytes after the final newline
        lines = [ln for ln in lines[:-1] if ln.strip()]
        records = samples = iters = 0
        sealed = False
        damaged = 0
        for line in lines:
            try:
                body = decode_line(line)
            except JournalError:
                damaged += 1
                continue
            records += 1
            kind = body.get("kind")
            if kind == "sample":
                samples += 1
            elif kind == "iter":
                iters += 1
            elif kind == "seal":
                sealed = True
        row.update(records=records, samples=samples, iterations=iters,
                   sealed=sealed, torn_tail=torn, damaged_lines=damaged)
        if damaged:
            row["status"] = "corrupt"
        elif torn:
            row["status"] = "torn"
        elif sealed:
            row["status"] = "sealed"
        else:
            row["status"] = "open"
        rows.append(row)
    return rows


def campaign_status(run_dir: Union[str, Path]) -> dict:
    """Machine-readable status of a campaign directory.

    The manifest's own view (shard states, restarts, merge watermark)
    plus a nested :func:`recovery_status` per shard directory, rebuilt
    from the shards' journals and checkpoints -- the durable truth the
    manifest only mirrors.
    """
    manifest = CampaignManifest.load(run_dir)
    shards = {}
    for index in sorted(manifest.shards):
        shards[index] = recovery_status(shard_dir(run_dir, index))
    return {
        "run_dir": str(run_dir),
        "campaign": manifest.to_dict(),
        "shards": {str(k): v for k, v in shards.items()},
        "resumable": all(s["resumable"] for s in shards.values()),
    }


def recovery_status(run_dir: Union[str, Path]) -> dict:
    """Machine-readable status of a recovery run directory.

    Dispatches to :func:`campaign_status` when ``run_dir`` holds a
    campaign manifest.
    """
    if is_campaign_dir(run_dir):
        return campaign_status(run_dir)
    rcfg = RecoveryConfig(run_dir=run_dir)
    checkpoints = _checkpoint_rows(rcfg.checkpoint_dir)
    segments = _segment_rows(rcfg.journal_dir)
    ledger = Quarantine(run_dir).read_ledger()
    latest: Optional[dict] = None
    for row in checkpoints:
        if row.get("status") == "ok":
            latest = row
    return {
        "run_dir": str(run_dir),
        "checkpoints": checkpoints,
        "latest_checkpoint": latest,
        "segments": segments,
        "samples_journaled": sum(s["samples"] for s in segments),
        "quarantine": ledger,
        "resumable": latest is not None or bool(segments),
    }


def _render_campaign_report(run_dir: Union[str, Path]) -> str:
    """Fixed-width status report of a campaign directory."""
    status = campaign_status(run_dir)
    manifest = status["campaign"]
    head = f"campaign status: {status['run_dir']}"
    parts = [head, "=" * len(head),
             f"state {manifest['state']}, {manifest['n_shards']} shards, "
             f"merge watermark {manifest['merge_watermark']}, "
             f"config digest {manifest['config_digest'][:12]}..."]
    table = Table(["shard", "labs", "machines", "state", "restarts",
                   "last iter", "resumable", "journal digest"])
    for row in manifest["plan"]:
        index = row["index"]
        shard = manifest["shards"][str(index)]
        nested = status["shards"][str(index)]
        table.add_row([
            index, ",".join(row["labs"]), row["n_machines"],
            shard["state"], shard["restarts"], shard["last_iteration"],
            "yes" if nested["resumable"] else "NO",
            shard["journal_digest"] or "-",
        ])
    parts += ["", table.render(), ""]
    if status["resumable"]:
        parts.append("every shard is resumable; 'repro run --resume "
                     f"--recover-dir {status['run_dir']}' continues the "
                     "campaign")
    else:
        parts.append("some shards have nothing to resume from; a resume "
                     "would cold-restart them against their journals")
    return "\n".join(parts)


def render_recovery_report(run_dir: Union[str, Path]) -> str:
    """Fixed-width status report of a recovery run directory.

    Campaign directories render the manifest's per-shard table instead
    of a single checkpoint/journal listing.
    """
    if is_campaign_dir(run_dir):
        return _render_campaign_report(run_dir)
    status = recovery_status(run_dir)
    parts = [f"recovery status: {status['run_dir']}"]
    parts.append("=" * len(parts[0]))

    ckpts = Table(["checkpoint", "iteration", "sim time (s)", "size (B)",
                   "status"])
    for row in status["checkpoints"]:
        ckpts.add_row([row["file"], row.get("iteration"),
                       row.get("sim_now"), row["bytes"], row["status"]])
    parts += ["", "checkpoints", "-----------",
              ckpts.render() if status["checkpoints"] else "(none)"]

    segs = Table(["segment", "records", "samples", "iterations", "status"])
    for row in status["segments"]:
        segs.add_row([row["file"], row["records"], row["samples"],
                      row["iterations"], row["status"]])
    parts += ["", "journal", "-------",
              segs.render() if status["segments"] else "(none)"]

    parts += ["", "quarantine", "----------"]
    if status["quarantine"]:
        q = Table(["reason", "file", "detail"])
        for entry in status["quarantine"]:
            detail = entry.get("detail") or ", ".join(
                f"{k}={v}" for k, v in sorted(entry.items())
                if k not in ("reason", "file", "detail", "quarantined_as")
            )
            q.add_row([entry.get("reason"), entry.get("file", "-"),
                       detail or "-"])
        parts.append(q.render())
    else:
        parts.append("(empty)")

    latest = status["latest_checkpoint"]
    parts.append("")
    if latest is not None:
        parts.append(
            f"resumable from iteration {latest['iteration']} "
            f"({status['samples_journaled']} samples journaled)"
        )
    elif status["resumable"]:
        parts.append("no valid checkpoint; resume would cold-restart "
                     "and re-verify against the journal")
    else:
        parts.append("nothing to resume")
    return "\n".join(parts)
