"""Resilience control-plane reporting and reconciliation.

Renders what the adaptive control plane (:mod:`repro.resilience`) did
during a run and -- the part the chaos harness and CI gate on -- proves
the accounting closes: every machine-slot of every executed iteration is
either a collected sample, an accounted failure, a shed slot or a
breaker skip, with **zero unexplained**:

``observed = collected + parse_failures + timeouts + access_denied
+ shed + breaker_skipped``

where ``observed = iterations_run * n_machines``.  The renderer works on
any :class:`~repro.experiment.MonitoringResult`; without an attached
policy the resilience rows are simply zero and the identity collapses to
the classic ``observed = attempts``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.report.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment import MonitoringResult

__all__ = ["resilience_summary", "render_resilience_report",
           "render_differential"]


def _p99(durations: List[float]) -> float:
    if not durations:
        return 0.0
    return float(np.percentile(np.asarray(durations, dtype=float), 99.0))


def resilience_summary(result: "MonitoringResult") -> Dict[str, object]:
    """JSON-able digest of a run's resilience behaviour and accounting."""
    meta = result.meta
    coord = result.coordinator
    rc = coord.resilience
    observed = meta.iterations_run * meta.n_machines
    failed = meta.timeouts + meta.access_denied + meta.parse_failures
    unexplained = (observed - meta.samples_collected - failed
                   - meta.shed - meta.breaker_skipped)
    summary: Dict[str, object] = {
        "policy_attached": rc is not None,
        "reconciliation": {
            "observed": observed,
            "attempts": meta.attempts,
            "collected": meta.samples_collected,
            "parse_failures": meta.parse_failures,
            "timeouts": meta.timeouts,
            "access_denied": meta.access_denied,
            "shed": meta.shed,
            "breaker_skipped": meta.breaker_skipped,
            "unexplained": unexplained,
        },
        "response_rate": coord.response_rate,
        "p99_iteration_seconds": _p99(coord.iteration_durations),
        "retries": {
            "attempted": meta.retries,
            "recovered": meta.retries_recovered,
            "skipped": meta.retries_skipped,
        },
        "hedging": {
            "hedges": meta.hedges,
            "hedge_wins": meta.hedge_wins,
        },
    }
    if rc is not None:
        transitions: Dict[str, int] = {}
        for tr in rc.breaker_log:
            transitions[tr.reason] = transitions.get(tr.reason, 0) + 1
        summary["breaker"] = {
            "states": rc.state_counts(),
            "transitions": transitions,
            "log_entries": len(rc.breaker_log),
        }
        summary["shedding"] = {
            "total": rc.shed_total,
            "by_reason": dict(sorted(rc.shed_by_reason.items())),
            "ledger_entries": len(rc.shed_ledger),
            "log_dropped": rc.log_dropped,
        }
        summary["deadlines"] = rc.deadlines()
        summary["fastfail_cuts"] = rc.fastfail_cuts
    return summary


def render_resilience_report(result: "MonitoringResult") -> str:
    """Human-readable resilience report for one finished run."""
    s = resilience_summary(result)
    rec = s["reconciliation"]
    parts: List[str] = []

    table = Table(["slot accounting", "count"])
    for key in ("observed", "collected", "parse_failures", "timeouts",
                "access_denied", "shed", "breaker_skipped", "unexplained"):
        table.add_row([key, rec[key]])
    parts.append("Reconciliation (observed = collected + failures + shed "
                 "+ breaker_skipped)\n" + table.render())
    ok = rec["unexplained"] == 0
    parts.append(f"accounting {'closes: zero unexplained slots' if ok else 'DOES NOT CLOSE'}"
                 + ("" if ok else f" ({rec['unexplained']} unexplained)"))

    table = Table(["metric", "value"])
    table.add_row(["response rate", f"{100 * s['response_rate']:.1f}%"])
    table.add_row(["p99 iteration seconds",
                   f"{s['p99_iteration_seconds']:.2f}"])
    retries = s["retries"]
    table.add_row(["retries attempted / recovered / skipped",
                   f"{retries['attempted']} / {retries['recovered']} / "
                   f"{retries['skipped']}"])
    hedging = s["hedging"]
    table.add_row(["hedges / wins",
                   f"{hedging['hedges']} / {hedging['hedge_wins']}"])
    if s["policy_attached"]:
        table.add_row(["deadline fast-fail cuts", s["fastfail_cuts"]])
    parts.append(table.render())

    if s["policy_attached"]:
        breaker = s["breaker"]
        table = Table(["breaker", "value"])
        for state, count in breaker["states"].items():
            table.add_row([f"machines {state}", count])
        for reason, count in sorted(breaker["transitions"].items()):
            table.add_row([f"transitions: {reason}", count])
        parts.append(table.render())

        shedding = s["shedding"]
        table = Table(["shedding", "value"])
        table.add_row(["total shed", shedding["total"]])
        for reason, count in shedding["by_reason"].items():
            table.add_row([f"reason: {reason}", count])
        if shedding["log_dropped"]:
            table.add_row(["ledger entries dropped (max_log)",
                           shedding["log_dropped"]])
        parts.append(table.render())

        table = Table(["lab", "adaptive deadline (s)"])
        for lab, deadline in s["deadlines"].items():
            table.add_row([lab, "warming up" if deadline is None
                           else f"{deadline:.2f}"])
        parts.append(table.render())
    else:
        parts.append("(no ResiliencePolicy attached: control plane inactive)")
    return "\n\n".join(parts)


def render_differential(rows: List[Dict[str, object]]) -> str:
    """Render policy-on vs policy-off rows from the chaos harness.

    Each row carries ``scenario``, ``response_rate_off/_on`` and
    ``p99_off/_on``; the verdict column states whether policy-on
    dominates (response rate no worse AND p99 no worse).
    """
    table = Table(["scenario", "resp off", "resp on", "p99 off", "p99 on",
                   "verdict"])
    for row in rows:
        dominates = (row["response_rate_on"] >= row["response_rate_off"]
                     and row["p99_on"] <= row["p99_off"])
        table.add_row([
            row["scenario"],
            f"{100 * row['response_rate_off']:.1f}%",
            f"{100 * row['response_rate_on']:.1f}%",
            f"{row['p99_off']:.2f}s",
            f"{row['p99_on']:.2f}s",
            "dominates" if dominates else "LOSES",
        ])
    return table.render()
