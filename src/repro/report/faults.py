"""Injected-vs-observed fault reporting.

After a fault-injected run, the interesting question is whether the
collector *felt* what the plan injected: every injected access-denial
should surface as an ``access_denied`` count (minus what the retry layer
recovered), every corrupted report as a parse failure, every partition
hit as a timeout.  :func:`fault_rows` lines the two ledgers up per
category and :func:`render_fault_report` formats them as the same
fixed-width tables the paper comparisons use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ddc.coordinator import DdcCoordinator
from repro.faults.plan import FaultPlan
from repro.report.tables import Table

__all__ = ["fault_rows", "render_fault_report"]


def fault_rows(
    coordinator: DdcCoordinator, plan: Optional[FaultPlan] = None
) -> List[Tuple[str, int, Optional[int]]]:
    """Per-category ``(category, injected, observed)`` rows.

    ``observed`` counts every occurrence the coordinator accounted, so it
    includes organic failures too (a powered-off machine times out with
    or without a partition); ``injected`` is the plan's ledger alone.
    Latency inflation has no observed counter -- it shows up in
    ``iteration_durations`` -- so its observed cell is a dash.
    """
    injected = plan.injected if plan is not None else {}
    coord = coordinator
    lost_iterations = coord.iterations_scheduled - coord.iterations_run
    return [
        ("coordinator outage (iterations lost)",
         injected.get("coordinator_outage", 0), lost_iterations),
        ("unreachable (timeouts)",
         injected.get("unreachable", 0), coord.timeouts),
        ("slow latency (inflated executions)",
         injected.get("slow_latency", 0), None),
        ("access denied",
         injected.get("access_denied", 0), coord.access_denied),
        ("corrupted telemetry (parse failures)",
         injected.get("corruption", 0), coord.parse_failures),
    ]


def render_fault_report(
    coordinator: DdcCoordinator, plan: Optional[FaultPlan] = None
) -> str:
    """Render the injected-vs-observed ledger plus the resilience totals."""
    table = Table(["fault category", "injected", "observed"])
    for row in fault_rows(coordinator, plan):
        table.add_row(row)
    totals = Table(["resilience counter", "value"])
    totals.add_row(["attempts", coordinator.attempts])
    totals.add_row(["samples collected", coordinator.samples_collected])
    totals.add_row(["retries", coordinator.retries])
    totals.add_row(["retries recovered", coordinator.retries_recovered])
    totals.add_row(["response rate %", 100.0 * coordinator.response_rate])
    title = "Fault injection: injected vs observed"
    parts = [title, "=" * len(title), table.render(), "", totals.render()]
    return "\n".join(parts)
