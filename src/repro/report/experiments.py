"""Run-everything harness: regenerate all tables and figures from a trace.

:func:`generate_report` computes every analysis once (sharing the
pairwise CPU estimates, the expensive intermediate) and packages the
results with their paper counterparts.  The benchmark suite and the
EXPERIMENTS.md generator both consume :class:`ExperimentReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

from repro.analysis.availability import (
    AvailabilitySeries,
    UptimeRatios,
    machines_on_series,
    uptime_ratios,
)
from repro.analysis.cpu import PairwiseCpu, pairwise_cpu
from repro.analysis.equivalence import EquivalenceResult, cluster_equivalence
from repro.analysis.mainresults import MainResults, compute_main_results
from repro.analysis.sessions import (
    ForgottenStats,
    SessionBuckets,
    first_bucket_above,
    forgotten_stats,
    relative_hour_buckets,
)
from repro.analysis.stability import (
    MachineSessions,
    SmartStats,
    detect_machine_sessions,
    smart_power_cycle_stats,
)
from repro.analysis.weekly import WeeklyProfiles, weekly_profiles
from repro.experiment import MonitoringResult
from repro.obs.observer import maybe_phase
from repro.report.paperdata import PAPER
from repro.report.tables import render_comparison
from repro.traces.columnar import ColumnarTrace

__all__ = ["ExperimentReport", "generate_report"]


@dataclass
class ExperimentReport:
    """All analyses of one monitoring run, plus rendering helpers."""

    result: MonitoringResult
    trace: ColumnarTrace
    pairs: PairwiseCpu
    main: MainResults
    buckets: SessionBuckets
    forgotten: ForgottenStats
    availability: AvailabilitySeries
    ratios: UptimeRatios
    sessions: MachineSessions
    smart: SmartStats
    weekly: WeeklyProfiles
    equivalence: EquivalenceResult

    # ------------------------------------------------------------------
    @cached_property
    def scale_rows(self) -> List[Tuple]:
        """Headline scale numbers (section 5 intro)."""
        coord = self.result.coordinator
        return [
            ("iterations run", PAPER.iterations, coord.iterations_run),
            ("samples collected", PAPER.samples, len(self.trace)),
            ("response rate %", 100 * PAPER.response_rate, 100 * coord.response_rate),
        ]

    @cached_property
    def table2_rows(self) -> List[Tuple]:
        """Table 2, flattened to (metric, paper, measured) rows."""
        rows: List[Tuple] = []
        classes = (("no_login", self.main.no_login), ("with_login", self.main.with_login),
                   ("both", self.main.both))
        for key, row in classes:
            rows.extend(
                [
                    (f"uptime % [{key}]", PAPER.t2_uptime_pct[key], row.uptime_pct),
                    (f"CPU idle % [{key}]", PAPER.t2_cpu_idle_pct[key], row.cpu_idle_pct),
                    (f"RAM load % [{key}]", PAPER.t2_ram_load_pct[key], row.ram_load_pct),
                    (f"swap load % [{key}]", PAPER.t2_swap_load_pct[key], row.swap_load_pct),
                    (f"disk used GB [{key}]", PAPER.t2_disk_used_gb[key], row.disk_used_gb),
                    (f"sent bps [{key}]", PAPER.t2_sent_bps[key], row.sent_bps),
                    (f"recv bps [{key}]", PAPER.t2_recv_bps[key], row.recv_bps),
                ]
            )
        return rows

    @cached_property
    def fig2_rows(self) -> List[Tuple]:
        first = first_bucket_above(self.buckets)
        return [
            ("first hour with idleness >= 99%", PAPER.fig2_first_hour_above_99, first),
            (
                "forgotten fraction of login samples",
                PAPER.forgotten_fraction_of_login,
                self.forgotten.forgotten_fraction,
            ),
        ]

    @cached_property
    def fig3_rows(self) -> List[Tuple]:
        return [
            ("avg powered-on machines", PAPER.fig3_avg_powered_on,
             self.availability.avg_powered_on),
            ("avg user-free machines", PAPER.fig3_avg_user_free,
             self.availability.avg_user_free),
        ]

    @cached_property
    def fig4_rows(self) -> List[Tuple]:
        s = self.ratios.summary()
        hist = self.sessions.length_histogram()
        return [
            ("machines with uptime ratio > 0.5", PAPER.fig4_above_05, s["above_0.5"]),
            ("machines with uptime ratio > 0.8", PAPER.fig4_above_08_max, s["above_0.8"]),
            ("machines with uptime ratio > 0.9", PAPER.fig4_above_09, s["above_0.9"]),
            ("detected machine sessions/day/machine",
             PAPER.machine_sessions / PAPER.n_machines / PAPER.days,
             len(self.sessions) / self.trace.meta.n_machines
             / (self.trace.meta.horizon / 86400.0)),
            ("session mean length h", PAPER.session_mean_h,
             self.sessions.mean_length / 3600.0),
            ("session std length h", PAPER.session_std_h,
             self.sessions.std_length / 3600.0),
            ("share of sessions <= 96 h", PAPER.sessions_le_96h_share,
             float(hist["sessions_share"][0])),
            ("share of uptime <= 96 h", PAPER.uptime_le_96h_share,
             float(hist["uptime_share"][0])),
        ]

    @cached_property
    def smart_rows(self) -> List[Tuple]:
        return [
            ("power cycles / machine / day", PAPER.smart_cycles_per_day,
             self.smart.cycles_per_day),
            ("cycle excess over detected sessions", PAPER.smart_cycle_excess,
             self.smart.cycle_excess_over_sessions(len(self.sessions))),
            ("uptime per cycle h (experiment)", PAPER.uptime_per_cycle_h,
             self.smart.uptime_per_cycle_h_mean),
            ("uptime per cycle h (whole life)", PAPER.life_uptime_per_cycle_h,
             self.smart.life_uptime_per_cycle_h_mean),
            ("whole-life std h", PAPER.life_uptime_per_cycle_std_h,
             self.smart.life_uptime_per_cycle_h_std),
        ]

    @cached_property
    def fig5_rows(self) -> List[Tuple]:
        dip_hour, dip_val = self.weekly.minimum_idleness()
        ram_floor = float(np.nanmin(self.weekly.ram_load_pct))
        sent = self.weekly.sent_bps
        recv = self.weekly.recv_bps
        valid = np.isfinite(sent) & np.isfinite(recv) & (sent > 0)
        recv_over_sent = float(np.nanmean(recv[valid] / sent[valid]))
        return [
            ("deepest weekly idleness dip %", PAPER.fig5_tuesday_dip_below_pct, dip_val),
            ("dip falls on Tuesday (weekday idx)", 1, int(dip_hour // 24)),
            ("RAM load floor %", PAPER.fig5_ram_floor_pct, ram_floor),
            ("recv/sent rate ratio", PAPER.t2_recv_bps["both"] / PAPER.t2_sent_bps["both"],
             recv_over_sent),
        ]

    @cached_property
    def fig6_rows(self) -> List[Tuple]:
        eq = self.equivalence
        return [
            ("cluster equivalence ratio", PAPER.equivalence_total, eq.ratio_total),
            ("occupied contribution", PAPER.equivalence_occupied, eq.ratio_occupied),
            ("user-free contribution", PAPER.equivalence_free, eq.ratio_free),
        ]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the full paper-vs-measured report as text."""
        parts = [
            render_comparison(self.scale_rows, title="Experiment scale (section 5)"),
            render_comparison(self.table2_rows, title="Table 2: main results"),
            render_comparison(self.fig2_rows, title="Fig 2: forgotten sessions"),
            render_comparison(self.fig3_rows, title="Fig 3: availability"),
            render_comparison(self.fig4_rows, title="Fig 4: uptime & stability"),
            render_comparison(self.smart_rows, title="Section 5.2.2: SMART"),
            render_comparison(self.fig5_rows, title="Fig 5: weekly profiles"),
            render_comparison(self.fig6_rows, title="Fig 6: cluster equivalence"),
        ]
        return "\n\n".join(parts)


def generate_report(result: MonitoringResult) -> ExperimentReport:
    """Compute every analysis of a finished run, sharing intermediates.

    On an instrumented run the whole computation is timed into the
    ``experiment.phase_seconds{phase=analyse}`` gauge (the columnarise
    phase is accounted separately by ``result.trace``).
    """
    trace = result.trace
    with maybe_phase(result.observer, "analyse"):
        return _generate(result, trace)


def _generate(result: MonitoringResult, trace: ColumnarTrace) -> ExperimentReport:
    pairs = pairwise_cpu(trace)
    return ExperimentReport(
        result=result,
        trace=trace,
        pairs=pairs,
        main=compute_main_results(trace, pairs=pairs),
        buckets=relative_hour_buckets(trace, pairs),
        forgotten=forgotten_stats(trace),
        availability=machines_on_series(trace),
        ratios=uptime_ratios(trace),
        sessions=detect_machine_sessions(trace),
        smart=smart_power_cycle_stats(trace),
        weekly=weekly_profiles(trace, pairs),
        equivalence=cluster_equivalence(trace, pairs=pairs),
    )
