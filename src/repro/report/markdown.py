"""Markdown rendering of comparison reports.

EXPERIMENTS.md-style output: the same ``(metric, paper, measured)`` rows
the text renderer consumes, emitted as GitHub-flavoured Markdown tables
with a deviation column.  Used by the CLI's ``report --markdown`` mode.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.report.tables import fmt

__all__ = ["markdown_table", "markdown_comparison", "markdown_report"]


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, ndigits: int = 2
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    head = "| " + " | ".join(headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = []
    for row in rows:
        cells = [fmt(c, ndigits) for c in row]
        if len(cells) != len(headers):
            raise ValueError("row width does not match headers")
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([head, sep, *body])


def markdown_comparison(
    rows: Sequence[tuple], *, title: Optional[str] = None, ndigits: int = 2
) -> str:
    """Render ``(metric, paper, measured)`` rows as a Markdown section."""
    table_rows = []
    for metric, paper, measured in rows:
        if paper is None or measured is None:
            dev = "—"
        elif isinstance(paper, (int, float)) and float(paper) != 0.0:
            dev = f"{100.0 * (float(measured) - float(paper)) / abs(float(paper)):+.1f}%"
        else:
            dev = f"{float(measured) - float(paper):+.3g}"
        table_rows.append((metric, paper, measured, dev))
    table = markdown_table(
        ["metric", "paper", "measured", "deviation"], table_rows, ndigits=ndigits
    )
    if title:
        return f"## {title}\n\n{table}"
    return table


def markdown_report(report) -> str:
    """Full paper-vs-measured report as Markdown.

    ``report`` is an :class:`~repro.report.experiments.ExperimentReport`.
    """
    sections = [
        ("Experiment scale (section 5)", report.scale_rows),
        ("Table 2: main results", report.table2_rows),
        ("Fig 2: forgotten sessions", report.fig2_rows),
        ("Fig 3: availability", report.fig3_rows),
        ("Fig 4: uptime & stability", report.fig4_rows),
        ("Section 5.2.2: SMART", report.smart_rows),
        ("Fig 5: weekly profiles", report.fig5_rows),
        ("Fig 6: cluster equivalence", report.fig6_rows),
    ]
    parts = ["# Paper vs. measured\n"]
    parts.extend(markdown_comparison(rows, title=title) for title, rows in sections)
    return "\n\n".join(parts) + "\n"
