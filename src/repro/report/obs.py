"""Rendering of observability snapshots, with fault cross-referencing.

:func:`render_obs_report` turns an :class:`~repro.obs.ObsSnapshot` into
the same fixed-width (or Markdown) tables the paper comparisons use:

- a run summary (engine, fleet and collector totals),
- pipeline phase timings,
- per-lab collector counters (samples, timeouts, retries, ...),
- per-lab pass-duration histograms with ASCII bars,
- and -- when the snapshot carries a ``faults.injected`` ledger -- the
  injected-vs-observed reconciliation, category for category the same
  ledger :func:`repro.report.faults.fault_rows` builds from a live
  coordinator, but recovered entirely from the exported snapshot.

:func:`obs_to_json` is the machine-readable variant (``repro obs
--json``).
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.faults.plan import FAULT_CATEGORIES
from repro.obs.snapshot import ObsSnapshot
from repro.report.tables import Table

__all__ = [
    "render_obs_report",
    "render_histogram",
    "obs_to_json",
    "obs_fault_rows",
]

#: Fault category -> (report label, observed obs-counter name).  Mirrors
#: :func:`repro.report.faults.fault_rows`; ``None`` means the category
#: has no direct observed counter (latency inflation shows up in the
#: duration histograms instead).
_CATEGORY_OBSERVED = {
    "coordinator_outage": ("coordinator outage (iterations lost)",
                           "ddc.iterations_lost"),
    "unreachable": ("unreachable (timeouts)", "ddc.timeouts"),
    "slow_latency": ("slow latency (inflated executions)", None),
    "access_denied": ("access denied", "ddc.access_denied"),
    "corruption": ("corrupted telemetry (parse failures)",
                   "ddc.parse_failures"),
}


def obs_fault_rows(
    snapshot: ObsSnapshot,
) -> List[Tuple[str, int, Optional[int]]]:
    """``(category, injected, observed)`` rows from a snapshot alone.

    ``observed`` sums the collector's per-lab counters, so it includes
    organic failures (a powered-off machine times out with or without a
    partition) -- the same semantics as the live
    :func:`repro.report.faults.fault_rows` ledger.
    """
    rows = []
    for category in FAULT_CATEGORIES:
        label, observed_name = _CATEGORY_OBSERVED[category]
        injected = snapshot.counter_by_label(
            "faults.injected", "category").get(category, 0)
        observed = (snapshot.counter_total(observed_name)
                    if observed_name is not None else None)
        rows.append((label, injected, observed))
    return rows


def render_histogram(row: dict, width: int = 36) -> str:
    """ASCII rendering of one histogram metric row.

    Zero-count buckets are elided; each kept bucket shows its inclusive
    upper edge, count and a bar scaled to the fullest bucket.
    """
    edges = list(row["edges"]) + [float("inf")]
    counts = row["counts"]
    total = row["count"]
    if total == 0:
        return "(no observations)"
    peak = max(counts)
    lines = []
    for edge, count in zip(edges, counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(width * count / peak))
        label = "   +inf" if edge == float("inf") else f"{edge:7.2f}"
        lines.append(f"  <= {label} s  {count:7d}  {bar}")
    lines.append(
        f"  n={total}  mean={row['total'] / total:.2f}s"
        f"  min={row['min']:.2f}s  max={row['max']:.2f}s"
    )
    return "\n".join(lines)


def _section(title: str, body: str, markdown: bool) -> str:
    if markdown:
        return f"## {title}\n\n```\n{body}\n```"
    return f"{title}\n{'-' * len(title)}\n{body}"


def _summary_table(snapshot: ObsSnapshot) -> Table:
    table = Table(["counter", "value"])
    rows = [
        ("engine events fired", snapshot.counter_total("sim.events_fired")),
        ("tombstones discarded",
         snapshot.counter_total("sim.tombstones_discarded")),
        ("heap depth (max)", snapshot.gauge_value("sim.heap_depth_max")),
        ("sessions started", snapshot.counter_total("fleet.session_starts")),
        ("machine boots", snapshot.counter_total("fleet.boots")),
        ("machine shutdowns", snapshot.counter_total("fleet.shutdowns")),
        ("DDC iterations run", snapshot.counter_total("ddc.iterations_run")),
        ("DDC iterations lost", snapshot.counter_total("ddc.iterations_lost")),
        ("samples collected", snapshot.counter_total("ddc.samples")),
        ("spans recorded", len(snapshot.spans)),
        ("spans dropped", snapshot.spans_dropped),
        ("events sampled",
         f"{len(snapshot.events)} of {snapshot.events_seen} "
         f"(stride {snapshot.event_sample_every})"),
    ]
    for name, value in rows:
        table.add_row([name, value])
    return table


def _phase_table(snapshot: ObsSnapshot) -> Optional[Table]:
    phases = {
        r["labels"].get("phase", ""): r["value"]
        for r in snapshot.metrics
        if r["kind"] == "gauge" and r["name"] == "experiment.phase_seconds"
    }
    if not phases:
        return None
    table = Table(["phase", "wall seconds"], ndigits=3)
    for phase in ("build", "simulate", "collect", "columnarise", "analyse"):
        if phase in phases:
            table.add_row([phase, phases.pop(phase)])
    for phase, seconds in sorted(phases.items()):  # any non-standard phases
        table.add_row([phase, seconds])
    return table


def _lab_counter_table(snapshot: ObsSnapshot) -> Optional[Table]:
    columns = (
        ("samples", "ddc.samples"),
        ("timeouts", "ddc.timeouts"),
        ("denied", "ddc.access_denied"),
        ("retries", "ddc.retries"),
        ("recovered", "ddc.retries_recovered"),
        ("parse failures", "ddc.parse_failures"),
    )
    per_lab = {label: snapshot.counter_by_label(name, "lab")
               for label, name in columns}
    labs = sorted(set().union(*per_lab.values()))
    if not labs:
        return None
    table = Table(["lab", *(label for label, _ in columns)])
    for lab in labs:
        table.add_row([lab, *(per_lab[label].get(lab, 0)
                              for label, _ in columns)])
    return table


def render_obs_report(snapshot: ObsSnapshot, *, markdown: bool = False) -> str:
    """Render the full observability report for one snapshot."""
    title = "Observability report"
    parts = [f"# {title}" if markdown else f"{title}\n{'=' * len(title)}"]
    parts.append(_section("Run summary", _summary_table(snapshot).render(),
                          markdown))
    phase_table = _phase_table(snapshot)
    if phase_table is not None:
        parts.append(_section("Pipeline phases", phase_table.render(),
                              markdown))
    lab_table = _lab_counter_table(snapshot)
    if lab_table is not None:
        parts.append(_section("Collector counters per lab",
                              lab_table.render(), markdown))
    hists = snapshot.histograms("ddc.lab_pass_seconds")
    if hists:
        blocks = []
        for row in sorted(hists, key=lambda r: r["labels"].get("lab", "")):
            blocks.append(f"{row['labels'].get('lab', '?')}:\n"
                          f"{render_histogram(row)}")
        parts.append(_section(
            "Per-lab iteration pass durations (simulated seconds)",
            "\n".join(blocks), markdown))
    iteration = snapshot.histograms("ddc.iteration_seconds")
    if iteration and iteration[0]["count"]:
        parts.append(_section("Full-iteration durations (simulated seconds)",
                              render_histogram(iteration[0]), markdown))
    if snapshot.counter_total("faults.injected") or any(
        r["name"] == "faults.injected" for r in snapshot.metrics
    ):
        table = Table(["fault category", "injected", "observed"])
        for row in obs_fault_rows(snapshot):
            table.add_row(row)
        parts.append(_section("Fault injection: injected vs observed",
                              table.render(), markdown))
    return "\n\n".join(parts)


def obs_to_json(snapshot: ObsSnapshot, *, indent: int = 2) -> str:
    """Machine-readable digest of a snapshot (counters summed per name,
    histograms and phases in full, fault reconciliation included)."""
    counters = {}
    for row in snapshot.metrics:
        if row["kind"] == "counter":
            counters.setdefault(row["name"], 0)
            counters[row["name"]] += row["value"]
    doc = {
        "counters": counters,
        "gauges": [r for r in snapshot.metrics if r["kind"] == "gauge"],
        "histograms": [r for r in snapshot.metrics if r["kind"] == "histogram"],
        "spans": len(snapshot.spans),
        "spans_dropped": snapshot.spans_dropped,
        "events_sampled": len(snapshot.events),
        "events_seen": snapshot.events_seen,
        "faults": [
            {"category": c, "injected": inj, "observed": obs}
            for c, inj, obs in obs_fault_rows(snapshot)
        ],
    }
    return json.dumps(doc, indent=indent)
