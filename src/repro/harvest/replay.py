"""Offline harvesting what-if: replay a recorded trace.

The live scheduler (:mod:`repro.harvest.scheduler`) needs a running
simulation.  Operators of a *real* DDC deployment only have traces --
so this module answers "what would harvesting have yielded?" directly
from the samples, the same way the paper's section 5.4 extrapolates
from measured idleness:

- a machine contributes during a sample interval iff it was powered on
  and (by policy) user-free at both endpoints,
- the contribution is the pairwise idleness x the NBench weight x the
  interval, minus amortised checkpoint overhead,
- an eviction is charged whenever a contributing machine's interval
  ends occupied or the machine vanishes, losing the volatile tail
  (half a checkpoint interval, in expectation).

Being closed-form over the columnar arrays, the replay runs in
milliseconds over a 600k-sample trace and reproduces the live
scheduler's yield within a few percent (validated by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.cpu import PairwiseCpu, pairwise_cpu
from repro.analysis.equivalence import machine_weights
from repro.errors import HarvestError
from repro.harvest.scheduler import HarvestPolicy
from repro.traces.columnar import ColumnarTrace

__all__ = ["ReplayResult", "replay_harvest"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of an offline harvesting replay.

    Attributes
    ----------
    harvested_norm_seconds:
        Idle capacity the policy could have tapped (gross).
    checkpoint_overhead:
        Normalised seconds lost to checkpoint writes.
    eviction_losses:
        Expected normalised seconds of volatile work destroyed.
    achieved_ratio:
        Net yield / dedicated-fleet capacity over the trace horizon.
    eligible_intervals / evictions:
        Interval accounting.
    """

    harvested_norm_seconds: float
    checkpoint_overhead: float
    eviction_losses: float
    achieved_ratio: float
    eligible_intervals: int
    evictions: int


def replay_harvest(
    trace: ColumnarTrace,
    policy: Optional[HarvestPolicy] = None,
    *,
    pairs: Optional[PairwiseCpu] = None,
) -> ReplayResult:
    """Estimate a harvesting policy's yield from a recorded trace."""
    policy = policy or HarvestPolicy()
    meta = trace.meta
    if meta is None:
        raise HarvestError("replay needs trace metadata")
    if meta.attempts <= 0 or meta.horizon <= 0:
        raise HarvestError("metadata carries no attempt accounting")
    if pairs is None:
        pairs = pairwise_cpu(trace)

    weights = machine_weights(meta)
    w = weights[pairs.machine_id]

    if policy.harvest_occupied:
        eligible = np.ones(len(pairs), dtype=bool)
    else:
        # free at both endpoints of the interval (raw login state: a
        # guest must vacate for ghosts too -- the session looks live)
        occ_i = trace.has_session[pairs.i]
        occ_j = trace.has_session[pairs.j]
        eligible = ~occ_i & ~occ_j

    gross = float(np.sum(pairs.idle_frac[eligible] * w[eligible] * pairs.gap[eligible]))

    # checkpoint overhead: one checkpoint_cost per checkpoint_interval of
    # eligible wall time
    eligible_time = float(np.sum(pairs.gap[eligible] * w[eligible]))
    n_checkpoints = eligible_time / policy.checkpoint_interval
    ckpt_cost = n_checkpoints * policy.checkpoint_cost

    # evictions: an eligible interval whose *next* same-machine interval
    # is not eligible (login arrived / machine gone) loses, in
    # expectation, half a checkpoint interval of volatile work
    idx_eligible = np.flatnonzero(eligible)
    if idx_eligible.size:
        # pairs are ordered like the trace; the following interval of the
        # same machine is simply the next row when the machine matches
        m = pairs.machine_id
        valid = idx_eligible + 1 < len(pairs)
        nxt = np.minimum(idx_eligible + 1, len(pairs) - 1)
        same = valid & (m[nxt] == m[idx_eligible])
        still = valid & eligible[nxt]
        n_evictions = int((~(same & still)).sum())
    else:
        n_evictions = 0
    expected_volatile = 0.5 * min(policy.checkpoint_interval,
                                  meta.sample_period)
    evict_loss = n_evictions * expected_volatile

    net = max(0.0, gross - ckpt_cost - evict_loss)
    denom = float(weights[: meta.n_machines].sum()) * meta.horizon
    return ReplayResult(
        harvested_norm_seconds=gross,
        checkpoint_overhead=ckpt_cost,
        eviction_losses=evict_loss,
        achieved_ratio=net / denom,
        eligible_intervals=int(eligible.sum()),
        evictions=n_evictions,
    )
