"""The idle-cycle harvesting scheduler.

Implements the survival techniques the paper's conclusions call for:

- **guest discipline**: work runs only on powered-on machines without an
  interactive session, at the machine's *idle* fraction (the user-facing
  workload and the OS keep their share),
- **eviction**: a login or power-off kills the guest; progress since the
  last checkpoint is lost,
- **checkpointing**: progress is persisted every ``checkpoint_interval``
  seconds, paying ``checkpoint_cost`` seconds of lost compute each time,
- **replication** (optional): each task runs on ``replication`` machines
  at once; the first finisher wins and the other copies' work is wasted
  -- trading throughput for completion-latency robustness.

The scheduler participates in the same discrete-event simulation as the
fleet: it polls machine state every ``poll_period`` (like a Condor-style
matchmaker heartbeat), so everything it sees is subject to the same
volatility the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import HarvestError
from repro.harvest.tasks import Task, TaskBatch
from repro.machines.machine import SimMachine
from repro.sim.engine import Simulator

__all__ = ["HarvestPolicy", "HarvestStats", "HarvestScheduler"]


@dataclass(frozen=True)
class HarvestPolicy:
    """Scheduler tunables.

    Attributes
    ----------
    poll_period:
        Seconds between matchmaker heartbeats.
    checkpoint_interval:
        Seconds of volatile progress between checkpoints.
    checkpoint_cost:
        Wall seconds one checkpoint steals from computation.
    replication:
        Copies of each task run concurrently (1 = no replication).
    harvest_occupied:
        Also harvest machines with an interactive session (Ryu-style
        fine-grain stealing); default off, as the paper's free-machine
        accounting assumes.
    """

    poll_period: float = 300.0
    checkpoint_interval: float = 1800.0
    checkpoint_cost: float = 15.0
    replication: int = 1
    harvest_occupied: bool = False

    def __post_init__(self) -> None:
        if self.poll_period <= 0 or self.checkpoint_interval <= 0:
            raise HarvestError("periods must be positive")
        if self.checkpoint_cost < 0:
            raise HarvestError("checkpoint cost cannot be negative")
        if self.replication < 1:
            raise HarvestError("replication factor must be >= 1")


@dataclass
class HarvestStats:
    """Aggregate accounting of one harvesting run."""

    harvested_norm_seconds: float = 0.0
    lost_to_eviction: float = 0.0
    lost_to_checkpoints: float = 0.0
    wasted_replica_work: float = 0.0
    evictions: int = 0
    assignments: int = 0
    polls: int = 0


@dataclass
class _Slot:
    """One machine's current replica execution.

    Each replica computes the task independently: ``base`` is the
    replica's checkpointed progress (seeded from the task's best server
    checkpoint at assignment time), ``local`` the volatile progress since
    the replica's last checkpoint.
    """

    task: Task
    base: float = 0.0
    local: float = 0.0
    initial_base: float = 0.0
    eligible_last_poll: bool = True
    since_checkpoint: float = 0.0

    @property
    def total(self) -> float:
        """The replica's total progress on the task."""
        return self.base + self.local


class HarvestScheduler:
    """Assigns a :class:`TaskBatch` to idle machines inside a running sim.

    Parameters
    ----------
    machines:
        The fleet roster.
    sim:
        Shared simulator (start the scheduler before running it).
    batch:
        Tasks to execute.
    policy:
        Survival-technique tunables.
    weights:
        Per-machine performance weights (index / fleet mean); defaults
        to all ones.
    horizon:
        When to stop polling.
    """

    def __init__(
        self,
        machines: List[SimMachine],
        sim: Simulator,
        batch: TaskBatch,
        policy: HarvestPolicy,
        *,
        weights: Optional[np.ndarray] = None,
        horizon: float,
    ):
        if horizon <= 0:
            raise HarvestError("horizon must be positive")
        self.machines = machines
        self.sim = sim
        self.batch = batch
        self.policy = policy
        n = len(machines)
        if weights is None:
            weights = np.ones(n)
        if len(weights) != n:
            raise HarvestError("one weight per machine required")
        self.weights = np.asarray(weights, dtype=float)
        self.horizon = float(horizon)
        self.stats = HarvestStats()
        self._slots: Dict[int, _Slot] = {}          # machine index -> slot
        self._running_copies: Dict[int, int] = {}   # task_id -> live copies
        self._queue: List[Task] = list(batch.tasks)
        self._queue.reverse()  # pop() from the front of the batch
        self._last_poll: Optional[float] = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first heartbeat (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.sim.now, self._poll, name="harvest_poll")

    # ------------------------------------------------------------------
    def _eligible(self, machine: SimMachine) -> bool:
        if not machine.powered:
            return False
        if machine.session is not None and not self.policy.harvest_occupied:
            return False
        return True

    def _next_task(self) -> Optional[Task]:
        """Next task wanting another running copy, honouring replication."""
        while self._queue:
            task = self._queue[-1]
            if task.finished:
                self._queue.pop()
                continue
            copies = self._running_copies.get(task.task_id, 0)
            if copies >= self.policy.replication:
                self._queue.pop()
                continue
            self._running_copies[task.task_id] = copies + 1
            if copies + 1 >= self.policy.replication:
                self._queue.pop()
            return task
        return None

    def _release(self, task: Task, *, requeue: bool) -> None:
        copies = self._running_copies.get(task.task_id, 0)
        if copies > 0:
            self._running_copies[task.task_id] = copies - 1
        if requeue and not task.finished:
            self._queue.append(task)

    # ------------------------------------------------------------------
    def _poll(self) -> None:
        now = self.sim.now
        dt = 0.0 if self._last_poll is None else now - self._last_poll
        self._last_poll = now
        self.stats.polls += 1
        pol = self.policy
        for idx, machine in enumerate(self.machines):
            slot = self._slots.get(idx)
            eligible = self._eligible(machine)
            if slot is not None:
                task = slot.task
                if task.finished:
                    # A replica elsewhere finished first: drop this copy;
                    # everything it computed beyond its seed is wasted.
                    self.stats.wasted_replica_work += slot.total - slot.initial_base
                    self._release(task, requeue=False)
                    del self._slots[idx]
                elif not eligible:
                    self.stats.lost_to_eviction += slot.local
                    self.stats.evictions += 1
                    task.evictions += 1
                    self._release(task, requeue=True)
                    del self._slots[idx]
                elif dt > 0 and slot.eligible_last_poll:
                    idle = 1.0 - machine.cpu_busy
                    raw = dt * idle * self.weights[idx]
                    # amortised checkpoint cost
                    n_ckpt = 0
                    slot.since_checkpoint += dt
                    while slot.since_checkpoint >= pol.checkpoint_interval:
                        slot.since_checkpoint -= pol.checkpoint_interval
                        n_ckpt += 1
                    cost = min(n_ckpt * pol.checkpoint_cost * self.weights[idx], raw)
                    gained = raw - cost
                    self.stats.lost_to_checkpoints += cost
                    slot.local += gained
                    self.stats.harvested_norm_seconds += gained
                    if n_ckpt:
                        slot.base += slot.local
                        slot.local = 0.0
                        task.done = max(task.done, slot.base)
                        task.checkpoints += 1
                    if slot.total >= task.work:
                        task.done = task.work
                        task.volatile = 0.0
                        task.completed_at = now
                        self._release(task, requeue=False)
                        del self._slots[idx]
                else:
                    slot.eligible_last_poll = eligible
            if eligible and idx not in self._slots:
                task = self._next_task()
                if task is not None:
                    self._slots[idx] = _Slot(
                        task=task, base=task.done, initial_base=task.done
                    )
                    self.stats.assignments += 1
        if now + pol.poll_period <= self.horizon:
            self.sim.schedule(now + pol.poll_period, self._poll, name="harvest_poll")

    # ------------------------------------------------------------------
    @property
    def active_slots(self) -> int:
        """Machines currently hosting a guest task."""
        return len(self._slots)

    @property
    def useful_norm_seconds(self) -> float:
        """Work that survived: harvested minus eviction losses and minus
        losing replicas' duplicated computation."""
        return (
            self.stats.harvested_norm_seconds
            - self.stats.lost_to_eviction
            - self.stats.wasted_replica_work
        )

    def achieved_equivalence(self) -> float:
        """Useful work / what the same machines would deliver dedicated.

        The dedicated fleet delivers ``sum(weights) * horizon`` normalised
        seconds; the achieved ratio is directly comparable to Fig 6's
        upper bound (which assumes zero eviction/checkpoint/replication
        overhead).  Only *retained* work counts -- cycles burnt on
        progress that an eviction destroyed, or on replicas that lost the
        race, deliver nothing.
        """
        denom = float(self.weights.sum()) * self.horizon
        if denom <= 0:
            raise HarvestError("empty fleet")
        return self.useful_norm_seconds / denom
