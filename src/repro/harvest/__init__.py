"""Idle-cycle harvesting: the paper's motivating application.

The conclusions argue classroom fleets suit desktop-grid computing,
*provided* harvesting copes with volatility through "survival techniques
such as checkpointing, oversubscription and multiple executions".  This
subpackage builds that harvester and uses it to validate the 2:1
equivalence rule with an actual workload instead of an upper bound:

- :mod:`repro.harvest.tasks` -- work units (bags of normalised CPU
  seconds) and batch generators,
- :mod:`repro.harvest.scheduler` -- the harvesting scheduler: assigns
  tasks to powered-on, user-free machines, throttles to the idle CPU,
  evicts on user login or shutdown, checkpoints periodically and
  optionally replicates executions,
- :mod:`repro.harvest.validation` -- measures the *achieved* cluster
  equivalence and compares it with the Fig-6 upper bound.
"""

from repro.harvest.tasks import Task, TaskBatch, make_batch
from repro.harvest.scheduler import HarvestPolicy, HarvestScheduler, HarvestStats
from repro.harvest.validation import HarvestValidation, validate_equivalence
from repro.harvest.replay import ReplayResult, replay_harvest

__all__ = [
    "Task",
    "TaskBatch",
    "make_batch",
    "HarvestPolicy",
    "HarvestScheduler",
    "HarvestStats",
    "HarvestValidation",
    "validate_equivalence",
    "ReplayResult",
    "replay_harvest",
]
