"""Validate the 2:1 rule with an actual harvesting workload.

Fig 6's cluster-equivalence ratio (~0.51) is an *upper bound*: it counts
every idle cycle as harvestable.  This module runs the harvesting
scheduler against a live fleet and measures the *achieved* ratio -- what
a real guest workload extracts once eviction losses, checkpoint overhead
and scheduling latency are paid.  The conclusions' claim survives if the
achieved ratio lands within a modest discount of the upper bound while
still being roughly half a dedicated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentConfig
from repro.harvest.scheduler import HarvestPolicy, HarvestScheduler, HarvestStats
from repro.harvest.tasks import TaskBatch, make_batch
from repro.sim.fleet import FleetSimulator

__all__ = ["HarvestValidation", "validate_equivalence"]


@dataclass(frozen=True)
class HarvestValidation:
    """Result of one harvesting validation run.

    Attributes
    ----------
    achieved_ratio:
        Normalised work actually harvested / dedicated-fleet capacity.
    stats:
        The scheduler's raw accounting.
    tasks_completed / tasks_total:
        Batch completion counts.
    """

    achieved_ratio: float
    stats: HarvestStats
    tasks_completed: int
    tasks_total: int

    @property
    def eviction_loss_fraction(self) -> float:
        """Work lost to evictions / work harvested."""
        if self.stats.harvested_norm_seconds <= 0:
            return float("nan")
        return self.stats.lost_to_eviction / self.stats.harvested_norm_seconds


def validate_equivalence(
    config: ExperimentConfig,
    *,
    policy: HarvestPolicy | None = None,
    n_tasks: int = 400,
    mean_work_hours: float = 30.0,
) -> HarvestValidation:
    """Run a fleet with an embedded harvester and measure the yield.

    The task batch is sized generously so the scheduler never starves --
    we are measuring capacity, not batch latency.
    """
    policy = policy or HarvestPolicy()
    fleet = FleetSimulator(config)
    rng = fleet.streams.stream("harvest/batch")
    batch: TaskBatch = make_batch(n_tasks, rng, mean_work_hours=mean_work_hours)
    perf = np.array([m.spec.perf_index for m in fleet.machines], dtype=float)
    weights = perf / perf.mean()
    scheduler = HarvestScheduler(
        fleet.machines,
        fleet.sim,
        batch,
        policy,
        weights=weights,
        horizon=config.horizon,
    )
    fleet.start()
    scheduler.start()
    fleet.sim.run_until(config.horizon)
    return HarvestValidation(
        achieved_ratio=scheduler.achieved_equivalence(),
        stats=scheduler.stats,
        tasks_completed=len(batch.completed),
        tasks_total=len(batch),
    )
