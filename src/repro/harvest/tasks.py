"""Work units for the harvesting scheduler.

A task is a bag of **normalised CPU seconds**: one normalised second is
one second of a machine with NBench combined index 1.0 running fully
idle-harvested.  A machine with index ``w`` harvesting at idleness ``p``
delivers ``w * p`` normalised seconds per wall second -- the same
currency as the paper's cluster-equivalence metric, which makes the
validation in :mod:`repro.harvest.validation` a like-for-like check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import HarvestError

__all__ = ["Task", "TaskBatch", "make_batch"]


@dataclass
class Task:
    """One restartable work unit.

    Attributes
    ----------
    task_id:
        Stable identifier.
    work:
        Total normalised CPU seconds required.
    done:
        Checkpointed progress (survives eviction).
    volatile:
        Progress since the last checkpoint (lost on eviction).
    completed_at:
        Completion time, or ``None`` while pending/running.
    evictions / checkpoints:
        Lifetime counters, for the volatility statistics.
    """

    task_id: int
    work: float
    done: float = 0.0
    volatile: float = 0.0
    completed_at: Optional[float] = None
    evictions: int = 0
    checkpoints: int = 0

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise HarvestError("a task needs positive work")

    @property
    def remaining(self) -> float:
        """Normalised seconds still to compute (counting volatile work)."""
        return max(0.0, self.work - self.done - self.volatile)

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    def progress(self, amount: float) -> None:
        """Accumulate volatile progress."""
        if amount < 0:
            raise HarvestError("progress cannot be negative")
        if self.finished:
            raise HarvestError(f"task {self.task_id} already finished")
        self.volatile += amount

    def checkpoint(self) -> None:
        """Persist volatile progress."""
        self.done += self.volatile
        self.volatile = 0.0
        self.checkpoints += 1

    def evict(self) -> float:
        """Lose volatile progress; returns the lost amount."""
        lost = self.volatile
        self.volatile = 0.0
        self.evictions += 1
        return lost

    def complete(self, now: float) -> None:
        """Mark the task finished at ``now`` (checkpointing implicitly)."""
        self.checkpoint()
        self.completed_at = now


@dataclass
class TaskBatch:
    """A bag of tasks plus simple accounting."""

    tasks: List[Task] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def pending(self) -> List[Task]:
        """Tasks not yet finished."""
        return [t for t in self.tasks if not t.finished]

    @property
    def completed(self) -> List[Task]:
        """Finished tasks."""
        return [t for t in self.tasks if t.finished]

    @property
    def total_work(self) -> float:
        """Sum of all tasks' work, normalised seconds."""
        return float(sum(t.work for t in self.tasks))

    @property
    def completed_work(self) -> float:
        """Work of finished tasks, normalised seconds."""
        return float(sum(t.work for t in self.tasks if t.finished))

    def stats(self) -> Dict[str, float]:
        """Completion/volatility summary."""
        n = len(self.tasks)
        return {
            "tasks": float(n),
            "completed": float(len(self.completed)),
            "completed_work": self.completed_work,
            "evictions": float(sum(t.evictions for t in self.tasks)),
            "checkpoints": float(sum(t.checkpoints for t in self.tasks)),
        }


def make_batch(
    n_tasks: int,
    rng: np.random.Generator,
    *,
    mean_work_hours: float = 20.0,
    sigma: float = 0.6,
) -> TaskBatch:
    """Generate a log-normal batch of tasks.

    ``mean_work_hours`` is in normalised CPU hours (a 30-index machine
    finishes a 20-hour task in ~40 dedicated minutes; a fleet of idle
    classroom machines chews through hundreds per day).
    """
    if n_tasks <= 0:
        raise HarvestError("need at least one task")
    mu = np.log(mean_work_hours * 3600.0) - 0.5 * sigma**2
    works = rng.lognormal(mu, sigma, size=n_tasks)
    return TaskBatch(
        tasks=[Task(task_id=i, work=float(w)) for i, w in enumerate(works)]
    )
