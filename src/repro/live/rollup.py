"""Incrementally-updated rollups over a streamed journal.

:class:`LiveRollups` consumes journal records one at a time -- samples
and iteration markers, in journal order -- and maintains running
analogues of the batch analyses:

- **response rate** (Table 2): samples / attempts,
- **availability** (Fig 3): average powered-on and user-free machines
  per iteration run,
- **idleness** (Table 2 / Fig 5): the pairwise CPU-idleness estimator
  over consecutive same-machine samples, split by login state,
- **uptime ratios** (Fig 4-left): per-machine samples / iterations run,
- **cluster equivalence** (Fig 6): per-sample idleness contributions
  over attempts, split by raw login state,

each at fleet, lab and machine granularity.

Equality contract with :mod:`repro.analysis`
--------------------------------------------
The streaming estimators replicate the batch formulas *exactly*: the
same pair-eligibility rules (consecutive same-machine samples, gap
``<= 1.75 x`` the sampling period, no reboot in between), the same
forgotten-session reclassification, the same fallback
(``idle / uptime``) for samples without a valid predecessor, the same
denominators (``iterations_run x n_machines`` attempts).  Quantities
that are ratios of integers are bit-identical to the batch results;
accumulated float means can differ from NumPy's pairwise summation in
the last few ulps, so every float in a snapshot is rounded to
:data:`ROUND_DECIMALS` decimals -- the rounding both sides of the
differential test (:mod:`repro.live.replay`) apply.

Thread safety: all public methods take an internal lock; a condition
variable is notified at every iteration marker for the subscription
feed.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import LiveError
from repro.recovery.journal import JournalRecord

__all__ = ["LiveRollups", "ROUND_DECIMALS", "MAX_GAP_FACTOR"]

#: Decimal places every float in a snapshot is rounded to.  Summation
#: order between the streaming accumulators and NumPy's pairwise sums
#: differs by ~1e-11 relative at campaign scale; 6 decimals is far
#: coarser than that and far finer than anything the paper reports.
ROUND_DECIMALS = 6

#: Pair gap cap as a multiple of the sampling period (matches
#: :meth:`repro.traces.columnar.ColumnarTrace.consecutive_pairs`).
MAX_GAP_FACTOR = 1.75

#: Reboot-detector clock slack in seconds (matches
#: :meth:`~repro.traces.columnar.ColumnarTrace.reboot_between`).
REBOOT_SLACK = 30.0

#: Forgotten-session threshold (seconds); keep in sync with
#: :data:`repro.analysis.cpu.FORGOTTEN_THRESHOLD` without importing the
#: NumPy-heavy analysis stack into the ingest path.
FORGOTTEN_THRESHOLD = 10 * 3600.0


def _round(x: Optional[float]) -> Optional[float]:
    """Snapshot float policy: NaN/None -> None, else ROUND_DECIMALS."""
    if x is None or x != x:
        return None
    return round(float(x), ROUND_DECIMALS)


class _MachineState:
    """Streaming accumulator for one machine."""

    __slots__ = (
        "lab", "hostname", "samples", "pairs", "idle_sum",
        "last_t", "last_iteration", "last_uptime", "last_idle",
        "last_has_session", "last_username", "last_uptime_s",
    )

    def __init__(self, lab: str, hostname: str):
        self.lab = lab
        self.hostname = hostname
        self.samples = 0
        self.pairs = 0
        self.idle_sum = 0.0
        self.last_t: Optional[float] = None
        self.last_iteration = -1
        self.last_uptime = 0.0
        self.last_idle = 0.0
        self.last_has_session = False
        self.last_username = ""
        self.last_uptime_s = 0.0


class _LabState:
    """Streaming accumulator for one lab."""

    __slots__ = ("machines", "samples", "occupied", "pairs", "idle_sum")

    def __init__(self) -> None:
        self.machines = 0
        self.samples = 0
        self.occupied = 0
        self.pairs = 0
        self.idle_sum = 0.0


class LiveRollups:
    """Running Table-2 / Figs 2--6 analogues over streamed records.

    Parameters
    ----------
    sample_period:
        The DDC sampling period in seconds.  Drives the pair gap cap;
        for replay from a bare journal it can be inferred from the
        first two iteration markers
        (:func:`repro.live.replay.infer_sample_period`).
    """

    def __init__(self, sample_period: float):
        if not sample_period > 0:
            raise LiveError("sample_period must be positive")
        self.sample_period = float(sample_period)
        self.max_gap = MAX_GAP_FACTOR * float(sample_period)
        self._lock = threading.RLock()
        self._iter_cond = threading.Condition(self._lock)
        # fleet counters
        self.iterations_scheduled = 0
        self.iterations_run = 0
        self.samples = 0
        self.occupied_samples = 0
        self.pairs = 0
        self.occupied_pairs = 0
        self.idle_sum = 0.0
        self.idle_sum_occupied = 0.0
        self.idle_sum_free = 0.0
        self.eq_total = 0.0
        self.eq_occupied = 0.0
        self.eq_free = 0.0
        self.last_iteration: Optional[int] = None
        self.sim_time: Optional[float] = None
        self.records_ingested = 0
        self._max_mid = -1
        self._machines: Dict[int, _MachineState] = {}
        self._labs: Dict[str, _LabState] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_records(self, records: List[JournalRecord]) -> int:
        """Consume a batch of decoded journal records; returns samples added."""
        added = 0
        with self._lock:
            for rec in records:
                kind = rec.body.get("kind")
                self.records_ingested += 1
                if kind == "sample":
                    self._ingest_sample(rec.body["data"])
                    added += 1
                elif kind == "iter":
                    self._ingest_iter(rec.body)
        return added

    def _ingest_sample(self, d: dict) -> None:
        mid = int(d["machine_id"])
        t = float(d["t"])
        uptime = float(d["uptime_s"])
        idle = float(d["cpu_idle_s"])
        has_session = bool(d["has_session"])
        ss = d.get("session_start")

        m = self._machines.get(mid)
        if m is None:
            m = _MachineState(d["lab"], d["hostname"])
            self._machines[mid] = m
            lab = self._labs.get(m.lab)
            if lab is None:
                lab = _LabState()
                self._labs[m.lab] = lab
            lab.machines += 1
            if mid > self._max_mid:
                self._max_mid = mid
        lab = self._labs[m.lab]

        # Forgotten-session reclassification (occupied_mask semantics:
        # an absent logon time leaves the raw login state untouched).
        occupied = has_session
        if has_session and ss is not None and t - float(ss) >= FORGOTTEN_THRESHOLD:
            occupied = False

        # Pairwise idleness where a valid predecessor exists, the probe's
        # boot-relative average otherwise -- exactly the batch estimator
        # (pairwise_cpu + cluster_equivalence's fallback).
        fallback = idle / uptime if uptime > 0 else 1.0
        fallback = min(max(fallback, 0.0), 1.0)
        contrib = fallback
        if m.last_t is not None:
            gap = t - m.last_t
            if gap <= 0:
                raise LiveError(
                    f"non-increasing collection times for machine {mid}: "
                    f"{m.last_t} -> {t}"
                )
            if gap <= self.max_gap and not (
                uptime + REBOOT_SLACK < m.last_uptime + gap
            ):
                pair_idle = (idle - m.last_idle) / gap
                pair_idle = min(max(pair_idle, 0.0), 1.0)
                contrib = pair_idle
                self.pairs += 1
                self.idle_sum += pair_idle
                m.pairs += 1
                m.idle_sum += pair_idle
                lab.pairs += 1
                lab.idle_sum += pair_idle
                if occupied:
                    self.occupied_pairs += 1
                    self.idle_sum_occupied += pair_idle
                else:
                    self.idle_sum_free += pair_idle

        # Cluster-equivalence contribution, split by the *raw* login
        # state (Fig 6); NBench weights are 1.0 for journal-only fleets.
        self.eq_total += contrib
        if has_session:
            self.eq_occupied += contrib
        else:
            self.eq_free += contrib

        self.samples += 1
        lab.samples += 1
        m.samples += 1
        if occupied:
            self.occupied_samples += 1
            lab.occupied += 1

        m.last_t = t
        m.last_iteration = int(d["iteration"])
        m.last_uptime = uptime
        m.last_idle = idle
        m.last_has_session = has_session
        m.last_username = d.get("username", "")
        m.last_uptime_s = uptime

    def _ingest_iter(self, body: dict) -> None:
        self.iterations_scheduled += 1
        if body.get("ran", True):
            self.iterations_run += 1
        self.last_iteration = int(body["k"])
        self.sim_time = float(body["t"])
        self._iter_cond.notify_all()

    # ------------------------------------------------------------------
    # subscription feed
    # ------------------------------------------------------------------
    def wait_for_iteration(self, since: Optional[int] = None,
                           timeout: Optional[float] = None) -> Optional[int]:
        """Block until an iteration marker after ``since`` is ingested.

        ``since=None`` waits for the *next* marker after the newest one
        already seen (or for the first, when none arrived yet).
        Returns the newest iteration index, or ``None`` on timeout.
        """
        with self._iter_cond:
            threshold = self.last_iteration if since is None else since
            def arrived() -> bool:
                return (self.last_iteration is not None
                        and (threshold is None
                             or self.last_iteration > threshold))
            if self._iter_cond.wait_for(arrived, timeout):
                return self.last_iteration
            return None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        """Roster size inferred from the densest machine id seen."""
        return self._max_mid + 1

    def snapshot(self, *, include_machines: bool = True) -> dict:
        """JSON-safe snapshot of every rollup (floats rounded)."""
        with self._lock:
            return self._snapshot_locked(include_machines)

    def _snapshot_locked(self, include_machines: bool) -> dict:
        n = self.n_machines
        runs = self.iterations_run
        attempts = runs * n
        out: dict = {
            "schema": 1,
            "iterations": {
                "scheduled": self.iterations_scheduled,
                "run": runs,
                "last_k": self.last_iteration,
                "sim_time": _round(self.sim_time),
            },
            "counts": {
                "samples": self.samples,
                "machines": n,
                "machines_seen": len(self._machines),
                "labs": len(self._labs),
                "attempts": attempts,
                "occupied_samples": self.occupied_samples,
                "pairs": self.pairs,
                "occupied_pairs": self.occupied_pairs,
            },
        }
        if attempts == 0 or self.samples == 0:
            out["fleet"] = None
            out["labs"] = {}
            if include_machines:
                out["machines"] = {}
            return out

        free_pairs = self.pairs - self.occupied_pairs
        ratios = [
            min(m.samples / runs, 1.0) for m in self._machines.values()
        ]
        out["fleet"] = {
            "response_rate": _round(self.samples / attempts),
            "avg_powered_on": _round(self.samples / runs),
            "avg_user_free": _round(
                (self.samples - self.occupied_samples) / runs
            ),
            "idle_pct": {
                "both": _round(100.0 * self.idle_sum / self.pairs)
                if self.pairs else None,
                "no_login": _round(100.0 * self.idle_sum_free / free_pairs)
                if free_pairs else None,
                "with_login": _round(
                    100.0 * self.idle_sum_occupied / self.occupied_pairs
                ) if self.occupied_pairs else None,
            },
            "equivalence": {
                "ratio_total": _round(self.eq_total / attempts),
                "ratio_occupied": _round(self.eq_occupied / attempts),
                "ratio_free": _round(self.eq_free / attempts),
            },
            "uptime": {
                "above_0.5": sum(1 for r in ratios if r > 0.5),
                "above_0.8": sum(1 for r in ratios if r > 0.8),
                "above_0.9": sum(1 for r in ratios if r > 0.9),
                # Unseen roster slots count as ratio 0, exactly like the
                # batch bincount over the full roster.
                "max": _round(max(ratios) if len(ratios) == n
                              else max(max(ratios), 0.0)),
                "mean": _round(sum(ratios) / n),
            },
        }
        labs: dict = {}
        for name in sorted(self._labs):
            st = self._labs[name]
            labs[name] = {
                "machines": st.machines,
                "samples": st.samples,
                "occupied_samples": st.occupied,
                "response_rate": _round(st.samples / (runs * st.machines)),
                "avg_powered_on": _round(st.samples / runs),
                "avg_user_free": _round((st.samples - st.occupied) / runs),
                "pairs": st.pairs,
                "idle_pct": _round(100.0 * st.idle_sum / st.pairs)
                if st.pairs else None,
            }
        out["labs"] = labs
        if include_machines:
            machines: dict = {}
            for mid in sorted(self._machines):
                m = self._machines[mid]
                machines[str(mid)] = self._machine_dict(mid, m, runs)
            out["machines"] = machines
        return out

    def _machine_dict(self, mid: int, m: _MachineState, runs: int) -> dict:
        return {
            "lab": m.lab,
            "hostname": m.hostname,
            "samples": m.samples,
            "uptime_ratio": _round(min(m.samples / runs, 1.0)) if runs else None,
            "pairs": m.pairs,
            "idle_pct": _round(100.0 * m.idle_sum / m.pairs)
            if m.pairs else None,
            "last": {
                "t": _round(m.last_t),
                "iteration": m.last_iteration,
                "has_session": m.last_has_session,
                "username": m.last_username,
                "uptime_s": _round(m.last_uptime_s),
            },
        }

    # Endpoint views -----------------------------------------------------
    def lab_snapshot(self, name: str) -> Optional[dict]:
        """Snapshot of one lab plus its member machines; None if unknown."""
        with self._lock:
            if name not in self._labs:
                return None
            snap = self._snapshot_locked(include_machines=False)
            lab = snap["labs"].get(name)
            runs = self.iterations_run
            members = {
                str(mid): self._machine_dict(mid, m, runs)
                for mid, m in sorted(self._machines.items())
                if m.lab == name
            }
            return {"lab": name, "stats": lab, "machines": members}

    def machine_snapshot(self, mid: int) -> Optional[dict]:
        """Snapshot of one machine; None if never sampled."""
        with self._lock:
            m = self._machines.get(mid)
            if m is None:
                return None
            return {
                "machine_id": mid,
                **self._machine_dict(mid, m, self.iterations_run),
            }
