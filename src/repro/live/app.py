"""Composition root of a live run: driver + ingestor + query service.

:class:`LiveApp` wires the three moving parts together in a
failure-ordered way: the server binds its port **first** (so a port
conflict dies before anything touches the run directory), the driver
builds the simulation graph second, and the ingestor tails the driver's
journal last.  ``start()`` then sets all three threads running.

>>> from repro.live import LiveConfig
>>> from repro.live.app import LiveApp
>>> app = LiveApp(LiveConfig(run_dir="/tmp/demo", days=1, rate=None, port=0))
... # doctest: +SKIP
>>> app.start(); app.wait(); app.shutdown()  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional

from repro.config import ExperimentConfig
from repro.live.config import LiveConfig
from repro.live.driver import LiveDriver
from repro.live.ingest import LiveIngestor
from repro.live.rollup import LiveRollups
from repro.live.server import LiveServer

__all__ = ["LiveApp"]


class LiveApp:
    """One live run: bind, simulate, ingest, serve."""

    def __init__(self, config: LiveConfig):
        self.config = config
        period = ExperimentConfig(
            days=config.days, seed=config.seed
        ).ddc.sample_period
        self.rollups = LiveRollups(period)
        # Bind before building the graph: an occupied port must fail
        # fast, before the run directory is created.
        self.server = LiveServer(
            self.rollups, host=config.host, port=config.port
        )
        try:
            self.driver = LiveDriver(config)
        except BaseException:
            self.server.stop()
            raise
        self.ingestor = LiveIngestor(
            self.driver.journal_dir,
            self.rollups,
            source_done=lambda: self.driver.done,
        )
        self.server.attach(driver=self.driver, ingestor=self.ingestor)

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> None:
        self.driver.start()
        self.ingestor.start()
        self.server.start()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run is over *and* fully ingested.

        Returns True when both the driver and the ingestor finished
        (the ingestor exits only after draining the sealed journal).
        With a timeout, returns False if either is still going.
        """
        if not self.driver.join(timeout):
            return False
        return self.ingestor.join(timeout)

    def shutdown(self) -> None:
        """Stop everything, politely: driver first, then drain, then serve."""
        self.driver.stop()
        self.driver.join()
        # Let the ingestor finish draining the sealed journal on its
        # own (source_done fires now that the driver is done).
        if not self.ingestor.join(10.0):
            self.ingestor.stop()
            self.ingestor.join(1.0)
        self.server.stop()

    def raise_on_failure(self) -> None:
        if self.driver.error is not None:
            raise self.driver.error
