"""``repro.live`` -- streaming campus mode with a concurrent query service.

The paper's DDC collected samples in 15-minute passes and analysed them
offline; this package turns the reproduction into a *served* system
while keeping every determinism guarantee:

- :mod:`repro.live.driver` -- a **free-running driver** advancing the
  existing :class:`~repro.sim.engine.Simulator` /
  :class:`~repro.ddc.coordinator.DdcCoordinator` graph against a
  configurable wall-clock ratio (``--rate 60x``, ``--rate max``),
  streaming every collected sample through the recovery journal;
- :mod:`repro.live.ingest` -- a **streaming ingestor** tailing journal
  segments (follow-mode, no full-segment loads) into
  :class:`~repro.live.rollup.LiveRollups`, incrementally-updated
  per-fleet/per-lab/per-machine running analogues of Table 2 and
  Figs 2--6;
- :mod:`repro.live.server` -- a **concurrent query service** (stdlib
  threaded HTTP) exposing ``/stats``, ``/labs/<name>``,
  ``/machines/<id>``, ``/health``, ``/metricz`` and a long-poll / SSE
  ``/subscribe`` feed, safe under many simultaneous readers;
- :mod:`repro.live.replay` -- the **replay guarantee**: feeding a
  finished run's journal back through the same rollups produces output
  equal (to :data:`~repro.live.rollup.ROUND_DECIMALS` rounding) to the
  batch :mod:`repro.analysis` results, pinned by a differential test.

Entry points: ``repro live`` on the command line,
:class:`~repro.live.app.LiveApp` programmatically, and
``python -m repro.live.smoke`` for the CI end-to-end check.
"""

from repro.live.config import LiveConfig, parse_rate
from repro.live.rollup import ROUND_DECIMALS, LiveRollups
from repro.live.replay import batch_snapshot, infer_sample_period, replay_snapshot

__all__ = [
    "LiveConfig",
    "LiveRollups",
    "ROUND_DECIMALS",
    "batch_snapshot",
    "infer_sample_period",
    "parse_rate",
    "replay_snapshot",
]
