"""Streaming ingestor: tail the journal into live rollups.

:class:`LiveIngestor` runs a background thread that polls a
:class:`~repro.recovery.journal.JournalTailReader` and feeds every new
record into :class:`~repro.live.rollup.LiveRollups`.  It never loads a
full segment: the tail reader resumes from a byte offset, so each poll
reads only what the driver appended since the last one.

Termination is a drain, not a cutoff: once the source reports done
(the driver sealed the journal through ``RecoveryRuntime.finish``, which
happens *before* the driver's state turns terminal), the ingestor keeps
polling until a poll returns nothing -- at that point every flushed
record, including the final seal, has been consumed.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Optional, Union

from repro.live.rollup import LiveRollups
from repro.recovery.journal import JournalTailReader

__all__ = ["LiveIngestor"]


class LiveIngestor:
    """Tail ``journal_dir`` into ``rollups`` on a background thread.

    Parameters
    ----------
    journal_dir:
        The live run's journal directory (may not exist yet when the
        ingestor starts; the tail reader waits for the first segment).
    rollups:
        Shared accumulator the query service reads from.
    source_done:
        Zero-argument callable returning True once the journal writer
        has finished (sealed) -- typically ``driver.done``.  ``None``
        means the source never finishes on its own and only
        :meth:`stop` ends the thread.
    poll_interval:
        Sleep between empty polls, seconds.
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        rollups: LiveRollups,
        *,
        source_done: Optional[Callable[[], bool]] = None,
        poll_interval: float = 0.05,
    ):
        self.rollups = rollups
        self.reader = JournalTailReader(journal_dir)
        self.poll_interval = poll_interval
        self._source_done = source_done
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="live-ingest", daemon=True
        )
        self.polls: int = 0
        self.drained: bool = False

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Ask the thread to exit after its current poll."""
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> bool:
        if self._thread.ident is not None:
            self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def records_ingested(self) -> int:
        return self.rollups.records_ingested

    def _run(self) -> None:
        while True:
            self.polls += 1
            records = self.reader.poll()
            if records:
                self.rollups.ingest_records(records)
                continue
            if self._stop.is_set():
                break
            if self._source_done is not None and self._source_done():
                # Writer sealed before reporting done, and this poll
                # came after that and found nothing: fully drained.
                self.drained = True
                break
            self._stop.wait(self.poll_interval)
