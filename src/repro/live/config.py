"""Configuration of the live streaming mode."""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["LiveConfig", "parse_rate", "DEFAULT_PORT"]

#: Default listen port of the query service.
DEFAULT_PORT = 8765


def parse_rate(text: str) -> Optional[float]:
    """Parse a ``--rate`` flag value.

    ``"max"`` (any case) means unpaced -- the driver advances the
    simulation as fast as it can -- and returns ``None``.  Otherwise the
    value is a sim-seconds-per-wall-second ratio, with an optional
    trailing ``x``: ``"60x"`` and ``"60"`` both mean one wall second
    covers one simulated minute.

    Raises
    ------
    ValueError
        On unparseable input or a non-positive / non-finite ratio.
    """
    token = text.strip().lower()
    if token == "max":
        return None
    if token.endswith("x"):
        token = token[:-1]
    try:
        rate = float(token)
    except ValueError:
        raise ValueError(
            f"invalid rate {text!r}: expected a number, 'Nx' or 'max'"
        ) from None
    if not math.isfinite(rate) or rate <= 0:
        raise ValueError(f"rate must be positive and finite, got {text!r}")
    return rate


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of one live run (driver + ingestor + query service).

    Parameters
    ----------
    days / seed / machines:
        The simulated campaign, as for ``repro run``.  ``machines=None``
        uses the paper's Table-1 roster (169 machines);  any other value
        scales the lab mix via
        :func:`repro.machines.hardware.scaled_labs`.
    rate:
        Wall-clock pacing in simulated seconds per wall second
        (``None`` = unpaced, as fast as the simulator goes).
    host / port:
        Query-service listen address.  Port 0 binds an ephemeral port
        (tests); the bound port is reported by the server.
    run_dir:
        Run directory; the journal lands in ``<run_dir>/journal/``.
    checkpoint_every / segment_records / fsync:
        Forwarded to :class:`~repro.recovery.runtime.RecoveryConfig`.
        Live runs default to ``fsync=False``: the journal's write-ahead
        flush is what the ingestor needs, and the serving path should
        not stall on disk syncs.
    """

    run_dir: Union[str, Path]
    days: int = 2
    seed: int = 2005
    machines: Optional[int] = None
    rate: Optional[float] = 60.0
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    checkpoint_every: int = 96
    segment_records: int = 4096
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.rate is not None and not (
            math.isfinite(self.rate) and self.rate > 0
        ):
            raise ValueError("rate must be positive and finite (or None)")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.machines is not None and self.machines <= 0:
            raise ValueError("machines must be positive")
