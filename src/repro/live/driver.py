"""Free-running driver: the simulation graph on a wall-clock leash.

:class:`LiveDriver` assembles the exact graph ``run_shard`` builds for a
recovery-enabled run -- :class:`~repro.sim.fleet.FleetSimulator`,
:class:`~repro.ddc.coordinator.DdcCoordinator`,
:class:`~repro.recovery.runtime.RecoveryRuntime` -- and advances it on a
background thread in ``sample_period`` chunks.  With a finite ``rate``
the driver sleeps between chunks so that simulated time tracks
``rate x`` wall time; ``rate=None`` runs unpaced (``--rate max``).

Every sample and iteration marker is write-ahead journaled by the
recovery runtime before the chunk returns, which is what makes the
journal a live feed: the :class:`~repro.live.ingest.LiveIngestor` tails
it concurrently.  Stopping is cooperative --
:meth:`~repro.sim.engine.Simulator.request_stop` drains the current
event and returns -- and both the clean and the stopped path seal the
journal through :meth:`RecoveryRuntime.finish`, so a stopped live run is
resumable / replayable like any crashed batch run.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional

from repro.config import ExperimentConfig
from repro.ddc.coordinator import DdcCoordinator
from repro.ddc.postcollect import SamplePostCollector
from repro.ddc.w32probe import W32Probe
from repro.errors import LiveError
from repro.live.config import LiveConfig
from repro.machines.hardware import TABLE1_LABS, scaled_labs
from repro.recovery.runtime import RecoveryConfig, RecoveryInfo, RecoveryRuntime
from repro.sim.fleet import FleetSimulator
from repro.traces.records import TraceMeta
from repro.traces.store import TraceStore

__all__ = ["LiveDriver"]

#: Longest single sleep while pacing, so stop requests stay responsive.
_PACING_SLICE = 0.2


class LiveDriver:
    """Drive one journaled experiment on a background thread.

    States (:attr:`state`): ``idle`` -> ``running`` -> ``sealing`` ->
    ``terminal`` (reached the horizon) / ``stopped`` (stop requested,
    journal still sealed) / ``failed`` (:attr:`error` holds the cause).
    """

    _DONE_STATES = frozenset({"terminal", "stopped", "failed"})

    def __init__(self, config: LiveConfig):
        self.config = config
        self.experiment = ExperimentConfig(days=config.days, seed=config.seed)
        labs = (
            TABLE1_LABS
            if config.machines is None
            else scaled_labs(config.machines)
        )
        recovery = RecoveryConfig(
            run_dir=config.run_dir,
            checkpoint_every=config.checkpoint_every,
            segment_records=config.segment_records,
            fsync=config.fsync,
        )
        self.journal_dir: Path = recovery.journal_dir
        cfg = self.experiment
        self.fleet = FleetSimulator(cfg, labs=labs)
        meta = TraceMeta(
            n_machines=len(self.fleet.machines),
            sample_period=cfg.ddc.sample_period,
            horizon=cfg.horizon,
        )
        self.store = TraceStore(meta)
        post = SamplePostCollector(self.store)
        self.coordinator = DdcCoordinator(
            self.fleet.machines,
            self.fleet.sim,
            cfg.ddc,
            W32Probe(),
            post,
            self.fleet.streams.stream("ddc"),
            horizon=cfg.horizon,
        )
        self.runtime = RecoveryRuntime(recovery)
        self.runtime.bind(
            fleet=self.fleet,
            coordinator=self.coordinator,
            store=self.store,
            config=cfg,
        )
        self.horizon: float = cfg.horizon
        self.sample_period: float = cfg.ddc.sample_period
        self.state: str = "idle"
        self.error: Optional[BaseException] = None
        self.recovery_info: Optional[RecoveryInfo] = None
        self.wall_started: Optional[float] = None
        self.wall_finished: Optional[float] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="live-driver", daemon=True
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.state != "idle":
            raise LiveError(f"driver already started (state={self.state!r})")
        self.state = "running"
        self._thread.start()

    def stop(self) -> None:
        """Request a cooperative stop; the journal is still sealed."""
        self._stop.set()
        # Interrupt an in-flight run_until chunk between events.
        self.fleet.sim.request_stop()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the driver thread; returns True once it finished."""
        if self._thread.ident is not None:
            self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def done(self) -> bool:
        return self.state in self._DONE_STATES

    @property
    def sim_now(self) -> float:
        return self.fleet.sim.now

    def progress(self) -> dict:
        """Coordinator counters plus driver pacing, for ``/health``."""
        out = self.coordinator.progress()
        out["sim_now"] = self.fleet.sim.now
        out["horizon"] = self.horizon
        out["state"] = self.state
        out["rate"] = self.config.rate
        if self.wall_started is not None:
            end = self.wall_finished or time.monotonic()
            wall = end - self.wall_started
            out["wall_seconds"] = wall
            out["effective_rate"] = (
                self.fleet.sim.now / wall if wall > 0 else None
            )
        return out

    # ------------------------------------------------------------------
    # Driver thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        sim = self.fleet.sim
        rate = self.config.rate
        self.wall_started = time.monotonic()
        try:
            self.fleet.start()
            self.coordinator.start()
            target = 0.0
            while sim.now < self.horizon and not self._stop.is_set():
                target = min(self.horizon, target + self.sample_period)
                if rate is not None:
                    self._pace(target / rate)
                    if self._stop.is_set():
                        break
                sim.run_until(target)
            self.coordinator.finalize_meta(self.store.meta)
            self.state = "sealing"
            self.recovery_info = self.runtime.finish()
            self.state = (
                "terminal" if sim.now >= self.horizon else "stopped"
            )
        except BaseException as exc:  # surfaced via self.error / /health
            self.error = exc
            try:
                self.runtime.hard_stop()
            finally:
                self.state = "failed"
        finally:
            self.wall_finished = time.monotonic()

    def _pace(self, wall_offset: float) -> None:
        """Sleep until ``wall_started + wall_offset``, stop-aware."""
        deadline = self.wall_started + wall_offset
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._stop.wait(min(remaining, _PACING_SLICE))
