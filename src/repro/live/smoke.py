"""CI smoke for the live subsystem: ``python -m repro.live.smoke``.

Runs a short campaign at maximum rate with the query service up, while
N reader threads (default 100) hammer every endpoint concurrently.
Asserts, in order:

1. **no 5xx** was served and ingestion never stalled;
2. the **live** snapshot equals a cold **replay** of the journal;
3. the replay equals the **batch** :mod:`repro.analysis` results
   (the PR's replay guarantee, exact to analysis rounding).

Artifacts (``--work-dir``): ``rollups_live.json``,
``rollups_replay.json``, ``rollups_batch.json``, ``summary.json``.
Exit status 0 on success, 1 on any failed assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.live.app import LiveApp
from repro.live.config import LiveConfig
from repro.live.replay import batch_snapshot, replay_snapshot

__all__ = ["main"]

#: Give up if the run has not reached terminal after this many seconds.
_RUN_TIMEOUT = 600.0


class _Reader(threading.Thread):
    """One querying client: loops over the endpoints until told to stop."""

    def __init__(self, index: int, base: str, done: threading.Event):
        super().__init__(name=f"smoke-reader-{index}", daemon=True)
        self.base = base
        self.done = done
        self.index = index
        self.requests = 0
        self.server_errors = 0
        self.transport_errors = 0
        self.statuses: dict = {}

    def run(self) -> None:
        paths = [
            "/stats",
            "/labs",
            f"/machines/{self.index}",
            "/health",
            "/stats?machines=1",
            "/subscribe?timeout=0.2",
        ]
        i = 0
        while not self.done.is_set():
            path = paths[i % len(paths)]
            i += 1
            self.requests += 1
            try:
                with urllib.request.urlopen(
                    self.base + path, timeout=30
                ) as resp:
                    resp.read()
                    status = resp.status
            except urllib.error.HTTPError as exc:
                status = exc.code
            except OSError:
                # Connect/read hiccups (e.g. server shutting down as the
                # stop flag propagates) are transport noise, not a 5xx.
                self.transport_errors += 1
                continue
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status >= 500:
                self.server_errors += 1


def _fetch_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _dump(path: Path, obj: dict) -> None:
    with path.open("w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _diff_keys(a: dict, b: dict, prefix: str = "") -> list:
    """First few paths where two snapshot dicts differ (for diagnostics)."""
    diffs = []
    for key in sorted(set(a) | set(b)):
        pa, pb = a.get(key), b.get(key)
        where = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(pa, dict) and isinstance(pb, dict):
            diffs.extend(_diff_keys(pa, pb, where))
        elif pa != pb:
            diffs.append(f"{where}: {pa!r} != {pb!r}")
        if len(diffs) >= 20:
            break
    return diffs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.smoke",
        description="end-to-end live-mode smoke (CI gate)",
    )
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--machines", type=int, default=None)
    parser.add_argument("--readers", type=int, default=100)
    parser.add_argument("--work-dir", required=True)
    args = parser.parse_args(argv)

    work = Path(args.work_dir)
    work.mkdir(parents=True, exist_ok=True)
    config = LiveConfig(
        run_dir=work / "run",
        days=args.days,
        seed=args.seed,
        machines=args.machines,
        rate=None,  # max rate
        port=0,  # ephemeral
    )
    app = LiveApp(config)
    app.start()
    base = app.url
    print(f"live-smoke: serving {base}, {args.readers} readers, "
          f"{args.days}-day run at max rate")

    done = threading.Event()
    readers = [_Reader(i, base, done) for i in range(args.readers)]
    for r in readers:
        r.start()

    deadline = time.monotonic() + _RUN_TIMEOUT
    terminal = False
    while time.monotonic() < deadline:
        health = _fetch_json(base + "/health")
        if health.get("terminal"):
            terminal = True
            break
        time.sleep(0.25)
    app.wait(timeout=max(0.0, deadline - time.monotonic()))
    done.set()
    for r in readers:
        r.join(10.0)

    failures = []
    if not terminal:
        failures.append(f"run did not reach terminal in {_RUN_TIMEOUT}s")
    app.raise_on_failure()

    health = _fetch_json(base + "/health")
    total_requests = sum(r.requests for r in readers)
    server_errors = sum(r.server_errors for r in readers)
    statuses: dict = {}
    for r in readers:
        for code, n in r.statuses.items():
            statuses[str(code)] = statuses.get(str(code), 0) + n
    if server_errors:
        failures.append(f"{server_errors} 5xx responses out of "
                        f"{total_requests} requests")
    ingest = health.get("ingest", {})
    if not ingest.get("drained"):
        failures.append("ingestor did not drain the sealed journal")
    if ingest.get("records_ingested", 0) == 0:
        failures.append("ingestion stalled: zero records ingested")
    if ingest.get("anomalies"):
        failures.append(f"tail anomalies: {ingest['anomalies']}")

    live_snap = app.rollups.snapshot()
    app.server.stop()
    replay_snap = replay_snapshot(app.driver.journal_dir)
    batch_snap = batch_snapshot(app.driver.journal_dir)
    _dump(work / "rollups_live.json", live_snap)
    _dump(work / "rollups_replay.json", replay_snap)
    _dump(work / "rollups_batch.json", batch_snap)
    if live_snap != replay_snap:
        failures.append("live snapshot != journal replay: "
                        + "; ".join(_diff_keys(live_snap, replay_snap)[:5]))
    if replay_snap != batch_snap:
        failures.append("journal replay != batch analysis: "
                        + "; ".join(_diff_keys(replay_snap, batch_snap)[:5]))

    summary = {
        "ok": not failures,
        "failures": failures,
        "readers": args.readers,
        "requests": total_requests,
        "statuses": statuses,
        "server_errors": server_errors,
        "transport_errors": sum(r.transport_errors for r in readers),
        "records_ingested": ingest.get("records_ingested"),
        "segments_finished": ingest.get("segments_finished"),
        "seals_verified": ingest.get("seals_verified"),
        "samples": live_snap["counts"]["samples"],
        "iterations_run": live_snap["iterations"]["run"],
        "driver": health.get("driver"),
    }
    _dump(work / "summary.json", summary)
    if failures:
        for f in failures:
            print(f"live-smoke: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"live-smoke: OK -- {total_requests} requests over "
          f"{args.readers} readers, 0 server errors, "
          f"{ingest.get('records_ingested')} records ingested, "
          f"replay == batch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
