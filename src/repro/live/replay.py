"""Replay a finished journal and compare against the batch analyses.

Two snapshot builders over the *same* journal:

- :func:`replay_snapshot` feeds every record through the streaming
  :class:`~repro.live.rollup.LiveRollups` (exactly what the live
  ingestor does, minus the waiting);
- :func:`batch_snapshot` reconstructs a
  :class:`~repro.traces.store.TraceStore` and runs the real
  :mod:`repro.analysis` modules (``pairwise_cpu``,
  ``idleness_by_login_state``, ``machines_on_series``,
  ``uptime_ratios``, ``cluster_equivalence``) over the columnar trace,
  then formats the results into the same snapshot shape with the same
  :data:`~repro.live.rollup.ROUND_DECIMALS` rounding.

The replay guarantee -- pinned by ``tests/live/test_rollups.py`` and
the CI live-smoke job -- is that the two dicts are **equal**.

Journal-derived metadata
------------------------
A bare journal carries no :class:`~repro.traces.records.TraceMeta`, so
both builders infer the same quantities from the records themselves:

- ``sample_period`` from the first two iteration markers (marker times
  are exactly ``k x period``);
- ``n_machines`` as ``max(machine_id) + 1`` (roster ids are dense
  indexes, and the batch ``bincount`` analyses size arrays the same
  way);
- ``iterations_run`` from the markers' ``ran`` flag (journals written
  before the flag existed count every marker as run).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import AnalysisError, LiveError
from repro.live.rollup import LiveRollups, _round
from repro.recovery.journal import JournalTailReader
from repro.recovery.runtime import sample_from_json_dict

__all__ = [
    "batch_snapshot",
    "infer_sample_period",
    "read_journal",
    "replay_rollups",
    "replay_snapshot",
]


def _default_period() -> float:
    from repro.config import DdcParams

    return DdcParams().sample_period


def read_journal(
    journal_dir: Union[str, Path],
) -> Tuple[List[dict], List[dict]]:
    """Drain a static journal; returns ``(sample bodies, iter bodies)``."""
    reader = JournalTailReader(journal_dir)
    samples: List[dict] = []
    iters: List[dict] = []
    while True:
        records = reader.poll()
        if not records:
            break
        for rec in records:
            kind = rec.body.get("kind")
            if kind == "sample":
                samples.append(rec.body["data"])
            elif kind == "iter":
                iters.append(rec.body)
    if reader.records_read == 0:
        raise LiveError(f"no journal records found under {journal_dir}")
    return samples, iters


def infer_sample_period(
    journal_dir: Union[str, Path], *, default: Optional[float] = None
) -> float:
    """Infer the sampling period from the journal's iteration markers.

    Marker times are scheduled at exactly ``k x sample_period``, so any
    two markers at distinct iterations pin the period exactly.  Falls
    back to ``default`` when the journal holds fewer than two markers;
    raises :class:`~repro.errors.LiveError` if there is no fallback.
    """
    reader = JournalTailReader(journal_dir)
    first: Optional[dict] = None
    while True:
        records = reader.poll()
        if not records:
            break
        for rec in records:
            body = rec.body
            if body.get("kind") != "iter":
                continue
            if first is None:
                first = body
            elif int(body["k"]) != int(first["k"]):
                return (float(body["t"]) - float(first["t"])) / (
                    int(body["k"]) - int(first["k"])
                )
    if default is not None:
        return default
    raise LiveError(
        f"cannot infer sample period: journal under {journal_dir} has "
        "fewer than two iteration markers"
    )


def replay_rollups(
    journal_dir: Union[str, Path], *, sample_period: Optional[float] = None
) -> LiveRollups:
    """Stream a finished journal through fresh :class:`LiveRollups`."""
    if sample_period is None:
        sample_period = infer_sample_period(
            journal_dir, default=_default_period()
        )
    rollups = LiveRollups(sample_period)
    reader = JournalTailReader(journal_dir)
    while True:
        records = reader.poll()
        if not records:
            break
        rollups.ingest_records(records)
    if rollups.records_ingested == 0:
        raise LiveError(f"no journal records found under {journal_dir}")
    return rollups


def replay_snapshot(
    journal_dir: Union[str, Path],
    *,
    sample_period: Optional[float] = None,
    include_machines: bool = True,
) -> dict:
    """The streaming side of the differential: replayed rollup snapshot."""
    rollups = replay_rollups(journal_dir, sample_period=sample_period)
    return rollups.snapshot(include_machines=include_machines)


def batch_snapshot(
    journal_dir: Union[str, Path],
    *,
    sample_period: Optional[float] = None,
    include_machines: bool = True,
) -> dict:
    """The batch side of the differential: :mod:`repro.analysis` output.

    Reconstructs the trace store from the journal, runs the batch
    analyses and formats their results into the snapshot shape of
    :meth:`LiveRollups.snapshot`.
    """
    import numpy as np

    from repro.analysis.availability import machines_on_series, uptime_ratios
    from repro.analysis.cpu import (
        PairwiseCpu,
        idleness_by_login_state,
        pairwise_cpu,
    )
    from repro.analysis.equivalence import cluster_equivalence
    from repro.traces.columnar import ColumnarTrace
    from repro.traces.records import TraceMeta
    from repro.traces.store import TraceStore

    sample_bodies, iter_bodies = read_journal(journal_dir)
    if sample_period is None:
        sample_period = infer_sample_period(
            journal_dir, default=_default_period()
        )

    store = TraceStore()
    for data in sample_bodies:
        store.add(sample_from_json_dict(data))

    scheduled = len(iter_bodies)
    runs = sum(1 for b in iter_bodies if b.get("ran", True))
    last_k = int(iter_bodies[-1]["k"]) if iter_bodies else None
    sim_time = float(iter_bodies[-1]["t"]) if iter_bodies else None

    mid_col = np.asarray(store.column("machine_id"), dtype=np.int64)
    n = int(mid_col.max()) + 1 if len(store) else 0
    attempts = runs * n

    out: dict = {
        "schema": 1,
        "iterations": {
            "scheduled": scheduled,
            "run": runs,
            "last_k": last_k,
            "sim_time": _round(sim_time),
        },
    }
    if attempts == 0 or len(store) == 0:
        out["counts"] = {
            "samples": len(store),
            "machines": n,
            "machines_seen": int(np.unique(mid_col).shape[0]) if len(store) else 0,
            "labs": len(set(store.column("lab"))),
            "attempts": attempts,
            "occupied_samples": 0,
            "pairs": 0,
            "occupied_pairs": 0,
        }
        out["fleet"] = None
        out["labs"] = {}
        if include_machines:
            out["machines"] = {}
        return out

    meta = TraceMeta(
        n_machines=n,
        sample_period=sample_period,
        horizon=(last_k + 1) * sample_period if last_k is not None else 0.0,
    )
    meta.iterations_scheduled = scheduled
    meta.iterations_run = runs
    meta.samples_collected = len(store)
    meta.attempts = attempts
    meta.timeouts = attempts - len(store)
    store.meta = meta

    trace = ColumnarTrace(store)
    occupied = trace.occupied_mask()
    try:
        pairs = pairwise_cpu(trace)
    except AnalysisError:
        empty_i = np.empty(0, dtype=np.int64)
        pairs = PairwiseCpu(
            i=empty_i,
            j=empty_i,
            gap=np.empty(0),
            idle_frac=np.empty(0),
            occupied=np.empty(0, dtype=bool),
            raw_login=np.empty(0, dtype=bool),
            t=np.empty(0),
            machine_id=np.empty(0, dtype=np.int32),
        )
    series = machines_on_series(trace)
    uptime = uptime_ratios(trace, meta).summary()
    eq = cluster_equivalence(trace, meta, pairs=pairs)
    with np.errstate(invalid="ignore"):
        idle_by_state = idleness_by_login_state(pairs) if len(pairs) else {
            "both": float("nan"),
            "no_login": float("nan"),
            "with_login": float("nan"),
        }

    out["counts"] = {
        "samples": len(store),
        "machines": n,
        "machines_seen": int(np.unique(mid_col).shape[0]),
        "labs": len(set(store.column("lab"))),
        "attempts": attempts,
        "occupied_samples": int(occupied.sum()),
        "pairs": int(len(pairs)),
        "occupied_pairs": int(pairs.occupied.sum()),
    }
    out["fleet"] = {
        "response_rate": _round(len(store) / attempts),
        "avg_powered_on": _round(series.avg_powered_on),
        "avg_user_free": _round(series.avg_user_free),
        "idle_pct": {
            "both": _round(idle_by_state["both"]),
            "no_login": _round(idle_by_state["no_login"]),
            "with_login": _round(idle_by_state["with_login"]),
        },
        "equivalence": {
            "ratio_total": _round(eq.ratio_total),
            "ratio_occupied": _round(eq.ratio_occupied),
            "ratio_free": _round(eq.ratio_free),
        },
        "uptime": {
            "above_0.5": int(uptime["above_0.5"]),
            "above_0.8": int(uptime["above_0.8"]),
            "above_0.9": int(uptime["above_0.9"]),
            "max": _round(uptime["max"]),
            "mean": _round(uptime["mean"]),
        },
    }

    # Per-machine aggregates via bincounts over the full roster, then
    # per-lab by summing each lab's member machines -- the same numbers
    # the streaming accumulators carry.
    mid_lab: dict = {}
    mid_host: dict = {}
    for mid, lab, host in zip(
        mid_col.tolist(), store.column("lab"), store.column("hostname")
    ):
        mid_lab[mid] = lab
        mid_host[mid] = host

    counts_per_mid = np.bincount(trace.machine_id, minlength=n)
    occ_per_mid = np.bincount(
        trace.machine_id, weights=occupied.astype(float), minlength=n
    )
    pairs_per_mid = np.bincount(pairs.machine_id, minlength=n)
    idle_per_mid = np.bincount(
        pairs.machine_id, weights=pairs.idle_frac, minlength=n
    )

    lab_mids: dict = {}
    for mid, lab in mid_lab.items():
        lab_mids.setdefault(lab, []).append(mid)
    labs_out: dict = {}
    for lab in sorted(lab_mids):
        mids = np.asarray(lab_mids[lab], dtype=np.int64)
        lab_samples = int(counts_per_mid[mids].sum())
        lab_occ = int(occ_per_mid[mids].sum())
        lab_pairs = int(pairs_per_mid[mids].sum())
        lab_idle = float(idle_per_mid[mids].sum())
        labs_out[lab] = {
            "machines": int(mids.shape[0]),
            "samples": lab_samples,
            "occupied_samples": lab_occ,
            "response_rate": _round(lab_samples / (runs * mids.shape[0])),
            "avg_powered_on": _round(lab_samples / runs),
            "avg_user_free": _round((lab_samples - lab_occ) / runs),
            "pairs": lab_pairs,
            "idle_pct": _round(100.0 * lab_idle / lab_pairs)
            if lab_pairs else None,
        }
    out["labs"] = labs_out

    if include_machines:
        # Last sample per machine: the trace is sorted (machine, t), so
        # block ends are the per-machine maxima.  Usernames live only in
        # the store; re-apply the same sort to line them up.
        t_col = np.asarray(store.column("t"), dtype=np.float64)
        order = np.lexsort((t_col, mid_col))
        usernames = store.column("username")
        block_end = np.flatnonzero(
            np.r_[trace.machine_id[1:] != trace.machine_id[:-1], True]
        )
        machines_out: dict = {}
        for idx in block_end.tolist():
            mid = int(trace.machine_id[idx])
            n_pairs = int(pairs_per_mid[mid])
            machines_out[str(mid)] = {
                "lab": mid_lab[mid],
                "hostname": mid_host[mid],
                "samples": int(counts_per_mid[mid]),
                "uptime_ratio": _round(min(counts_per_mid[mid] / runs, 1.0)),
                "pairs": n_pairs,
                "idle_pct": _round(100.0 * idle_per_mid[mid] / n_pairs)
                if n_pairs else None,
                "last": {
                    "t": _round(float(trace.t[idx])),
                    "iteration": int(trace.iteration[idx]),
                    "has_session": bool(trace.has_session[idx]),
                    "username": usernames[int(order[idx])],
                    "uptime_s": _round(float(trace.uptime[idx])),
                },
            }
        out["machines"] = machines_out
    return out
