"""Concurrent query service over the live rollups.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one daemon thread
per connection) serving JSON views of :class:`LiveRollups`:

====================  ==================================================
``/stats``            Fleet snapshot (``?machines=1`` to inline the
                      per-machine table).
``/labs``             All per-lab rollups.
``/labs/<name>``      One lab (404 on unknown names).
``/machines/<id>``    One machine (400 on non-integer ids, 404 unknown).
``/health``           Driver / ingestor liveness and progress.
``/metricz``          The server's own request metrics.
``/subscribe``        Long-poll for the next iteration marker
                      (``?since=K&timeout=S``); ``?mode=sse`` streams
                      Server-Sent Events instead, one per iteration.
====================  ==================================================

Every read takes the rollups lock only long enough to copy a snapshot,
so many concurrent readers never stall ingestion.  Request latencies
land in a ``live.request_seconds`` histogram
(:data:`~repro.obs.metrics.REQUEST_BUCKETS`) per route.

The server binds in the constructor: a port conflict surfaces
immediately as :class:`OSError` (``EADDRINUSE``), before any simulation
state exists -- the CLI turns that into a clean exit.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.live.rollup import LiveRollups
from repro.obs.metrics import REQUEST_BUCKETS, MetricsRegistry

__all__ = ["LiveServer"]

#: Routes that get their own metric labels; anything else is "other".
_ROUTES = (
    "stats", "labs", "lab", "machine", "health", "metricz", "subscribe",
    "other",
)

#: Longest single long-poll / SSE wait the server grants, seconds.
_MAX_WAIT = 30.0


class LiveServer:
    """Bind, serve and stop the query service.

    ``driver`` and ``ingestor`` are optional (absent in replay serving);
    ``/health`` reports whatever is attached.  Pass ``port=0`` for an
    ephemeral port and read :attr:`port` for the bound one.
    """

    def __init__(
        self,
        rollups: LiveRollups,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        driver=None,
        ingestor=None,
    ):
        self.rollups = rollups
        self.driver = driver
        self.ingestor = ingestor
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._requests = {
            r: self.metrics.counter("live.requests", route=r) for r in _ROUTES
        }
        self._errors = {
            r: self.metrics.counter("live.errors", route=r) for r in _ROUTES
        }
        self._latency = {
            r: self.metrics.histogram(
                "live.request_seconds", REQUEST_BUCKETS, route=r
            )
            for r in _ROUTES
        }
        handler = type(
            "LiveRequestHandler", (_Handler,), {"ctx": self}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="live-server",
            daemon=True,
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def attach(self, *, driver=None, ingestor=None) -> None:
        """Late-bind the driver/ingestor (they need the bound server)."""
        if driver is not None:
            self.driver = driver
        if ingestor is not None:
            self.ingestor = ingestor

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    # ------------------------------------------------------------------
    # Metrics plumbing (handler threads record through these)
    # ------------------------------------------------------------------

    def _record(self, route: str, status: int, seconds: float) -> None:
        with self._metrics_lock:
            self._requests[route].inc()
            if status >= 500:
                self._errors[route].inc()
            self._latency[route].observe(seconds)

    def health(self) -> dict:
        """The ``/health`` body; also handy programmatically."""
        out: dict = {"ok": True, "mode": "live" if self.driver else "replay"}
        if self.driver is not None:
            out["driver"] = self.driver.progress()
            out["terminal"] = self.driver.done
            if self.driver.error is not None:
                out["ok"] = False
                out["error"] = repr(self.driver.error)
        else:
            out["terminal"] = True
        if self.ingestor is not None:
            reader = self.ingestor.reader
            out["ingest"] = {
                "records_ingested": self.ingestor.records_ingested,
                "segments_finished": reader.segments_finished,
                "seals_verified": reader.seals_verified,
                "anomalies": [
                    {
                        "reason": a.reason,
                        "segment": a.segment,
                        "line": a.line,
                    }
                    for a in reader.anomalies
                ],
                "drained": self.ingestor.drained,
            }
        return out


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; ``ctx`` is the owning :class:`LiveServer`."""

    server_version = "repro-live/1"
    protocol_version = "HTTP/1.1"
    ctx: LiveServer = None  # type: ignore[assignment]

    # Silence the default stderr access log: with 100+ concurrent
    # readers it becomes the bottleneck (and noise) of the smoke run.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802  (stdlib handler contract)
        started = time.perf_counter()
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        route = "other"
        status = 500
        try:
            route, status = self._dispatch(parts, query)
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away; not a server error
        except Exception as exc:  # pragma: no cover - defensive
            status = self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            self.ctx._record(route, status, time.perf_counter() - started)

    def _dispatch(self, parts, query) -> tuple:
        rollups = self.ctx.rollups
        if not parts:
            return "other", self._send_json(
                200,
                {
                    "service": "repro-live",
                    "endpoints": [
                        "/stats", "/labs", "/labs/<name>",
                        "/machines/<id>", "/health", "/metricz",
                        "/subscribe",
                    ],
                },
            )
        head = parts[0]
        if head == "stats" and len(parts) == 1:
            include = query.get("machines", ["0"])[-1] not in ("0", "false")
            return "stats", self._send_json(
                200, rollups.snapshot(include_machines=include)
            )
        if head == "labs":
            if len(parts) == 1:
                snap = rollups.snapshot(include_machines=False)
                return "labs", self._send_json(200, {"labs": snap["labs"]})
            if len(parts) == 2:
                body = rollups.lab_snapshot(parts[1])
                if body is None:
                    return "lab", self._send_json(
                        404, {"error": f"unknown lab {parts[1]!r}"}
                    )
                return "lab", self._send_json(200, body)
        if head == "machines" and len(parts) == 2:
            try:
                mid = int(parts[1])
            except ValueError:
                return "machine", self._send_json(
                    400, {"error": f"machine id must be an integer, "
                                   f"got {parts[1]!r}"}
                )
            body = rollups.machine_snapshot(mid)
            if body is None:
                return "machine", self._send_json(
                    404, {"error": f"unknown machine {mid}"}
                )
            return "machine", self._send_json(200, body)
        if head == "health" and len(parts) == 1:
            body = self.ctx.health()
            return "health", self._send_json(200 if body["ok"] else 503, body)
        if head == "metricz" and len(parts) == 1:
            with self.ctx._metrics_lock:
                rows = self.ctx.metrics.rows()
            return "metricz", self._send_json(200, {"metrics": rows})
        if head == "subscribe" and len(parts) == 1:
            return "subscribe", self._subscribe(query)
        return "other", self._send_json(
            404, {"error": f"no such endpoint: /{'/'.join(parts)}"}
        )

    # ------------------------------------------------------------------
    # Subscription feed
    # ------------------------------------------------------------------

    def _subscribe(self, query) -> int:
        rollups = self.ctx.rollups
        try:
            since = int(query["since"][-1]) if "since" in query else None
            timeout = float(query.get("timeout", [str(_MAX_WAIT)])[-1])
        except ValueError:
            return self._send_json(
                400, {"error": "since must be an integer, timeout a number"}
            )
        timeout = max(0.0, min(timeout, _MAX_WAIT))
        if query.get("mode", [""])[-1] == "sse":
            return self._subscribe_sse(since, timeout)
        k = rollups.wait_for_iteration(since, timeout)
        return self._send_json(
            200,
            {
                "iteration": k,
                "timed_out": k is None,
                "terminal": self._terminal(),
            },
        )

    def _subscribe_sse(self, since: Optional[int], timeout: float) -> int:
        """Stream one SSE event per new iteration until terminal."""
        rollups = self.ctx.rollups
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE is an unbounded stream; close delimits it under HTTP/1.1.
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = since
        while True:
            k = rollups.wait_for_iteration(cursor, min(timeout, 1.0))
            if k is not None:
                cursor = k
                snap = rollups.snapshot(include_machines=False)
                payload = {
                    "iteration": k,
                    "sim_time": snap["iterations"]["sim_time"],
                    "samples": snap["counts"]["samples"],
                }
                data = json.dumps(payload, separators=(",", ":"))
                self.wfile.write(f"data: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
            elif self._terminal():
                self.wfile.write(b"event: terminal\ndata: {}\n\n")
                self.wfile.flush()
                self.close_connection = True
                return 200

    def _terminal(self) -> bool:
        driver = self.ctx.driver
        return True if driver is None else driver.done

    def _send_json(self, status: int, body: dict) -> int:
        raw = json.dumps(body, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)
        return status
