"""Calibration targets and goodness-of-fit scoring.

The simulator's default parameters (:mod:`repro.config`) were fitted so
that a default run reproduces the paper's headline numbers.  This module
makes that fit *measurable*: each :class:`CalibrationTarget` names a
paper value, how to extract the measured counterpart from an
:class:`~repro.report.experiments.ExperimentReport`, and a tolerance.

Use :func:`evaluate_calibration` after any parameter change (or in CI)
to see which targets hold; ``examples/calibration_report.py`` prints the
full scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import math

from repro.errors import CalibrationError
from repro.report.experiments import ExperimentReport
from repro.report.paperdata import PAPER

__all__ = ["CalibrationTarget", "TargetResult", "DEFAULT_TARGETS", "evaluate_calibration"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper number the simulator must land near.

    Attributes
    ----------
    name:
        Human-readable metric name.
    paper_value:
        The published value.
    extract:
        Function pulling the measured value out of a report.
    rel_tol:
        Acceptable relative deviation (e.g. 0.1 = 10%).
    abs_tol:
        Acceptable absolute deviation; a target passes if *either*
        tolerance is met.
    """

    name: str
    paper_value: float
    extract: Callable[[ExperimentReport], float]
    rel_tol: float = 0.10
    abs_tol: float = 0.0

    def check(self, report: ExperimentReport) -> "TargetResult":
        """Measure this target against a report."""
        measured = float(self.extract(report))
        if math.isnan(measured):
            raise CalibrationError(f"target {self.name!r} produced NaN")
        abs_dev = abs(measured - self.paper_value)
        rel_dev = abs_dev / abs(self.paper_value) if self.paper_value else math.inf
        ok = abs_dev <= self.abs_tol or rel_dev <= self.rel_tol
        return TargetResult(self, measured, rel_dev, ok)


@dataclass(frozen=True)
class TargetResult:
    """Outcome of checking one target."""

    target: CalibrationTarget
    measured: float
    rel_deviation: float
    ok: bool


def _t(name, paper, extract, rel_tol=0.10, abs_tol=0.0) -> CalibrationTarget:
    return CalibrationTarget(name, paper, extract, rel_tol, abs_tol)


#: The default scorecard: the paper numbers the defaults were fitted to.
DEFAULT_TARGETS: Sequence[CalibrationTarget] = (
    _t("uptime % (both)", PAPER.t2_uptime_pct["both"],
       lambda r: r.main.both.uptime_pct, 0.08),
    _t("uptime % (no login)", PAPER.t2_uptime_pct["no_login"],
       lambda r: r.main.no_login.uptime_pct, 0.12),
    _t("uptime % (with login)", PAPER.t2_uptime_pct["with_login"],
       lambda r: r.main.with_login.uptime_pct, 0.12),
    _t("CPU idle % (both)", PAPER.t2_cpu_idle_pct["both"],
       lambda r: r.main.both.cpu_idle_pct, 0.01),
    _t("CPU idle % (no login)", PAPER.t2_cpu_idle_pct["no_login"],
       lambda r: r.main.no_login.cpu_idle_pct, 0.01),
    _t("CPU idle % (with login)", PAPER.t2_cpu_idle_pct["with_login"],
       lambda r: r.main.with_login.cpu_idle_pct, 0.015),
    _t("RAM load % (no login)", PAPER.t2_ram_load_pct["no_login"],
       lambda r: r.main.no_login.ram_load_pct, 0.06),
    _t("RAM load % (with login)", PAPER.t2_ram_load_pct["with_login"],
       lambda r: r.main.with_login.ram_load_pct, 0.06),
    _t("swap load % (no login)", PAPER.t2_swap_load_pct["no_login"],
       lambda r: r.main.no_login.swap_load_pct, 0.08),
    _t("swap load % (with login)", PAPER.t2_swap_load_pct["with_login"],
       lambda r: r.main.with_login.swap_load_pct, 0.08),
    _t("disk used GB", PAPER.t2_disk_used_gb["both"],
       lambda r: r.main.both.disk_used_gb, 0.08),
    _t("sent bps (no login)", PAPER.t2_sent_bps["no_login"],
       lambda r: r.main.no_login.sent_bps, 0.25),
    _t("sent bps (with login)", PAPER.t2_sent_bps["with_login"],
       lambda r: r.main.with_login.sent_bps, 0.25),
    _t("recv bps (no login)", PAPER.t2_recv_bps["no_login"],
       lambda r: r.main.no_login.recv_bps, 0.35),
    _t("recv bps (with login)", PAPER.t2_recv_bps["with_login"],
       lambda r: r.main.with_login.recv_bps, 0.25),
    _t("avg powered-on machines", PAPER.fig3_avg_powered_on,
       lambda r: r.availability.avg_powered_on, 0.08),
    _t("avg user-free machines", PAPER.fig3_avg_user_free,
       lambda r: r.availability.avg_user_free, 0.10),
    _t("forgotten fraction of login samples", PAPER.forgotten_fraction_of_login,
       lambda r: r.forgotten.forgotten_fraction, 0.15),
    _t("first hour with >=99% idleness", float(PAPER.fig2_first_hour_above_99),
       lambda r: float(_first_hour(r)), 0.0, abs_tol=2.0),
    _t("SMART cycles / machine / day", PAPER.smart_cycles_per_day,
       lambda r: r.smart.cycles_per_day, 0.15),
    _t("SMART cycle excess over sessions", PAPER.smart_cycle_excess,
       lambda r: r.smart.cycle_excess_over_sessions(len(r.sessions)), 0.0, abs_tol=0.12),
    _t("whole-life uptime per cycle h", PAPER.life_uptime_per_cycle_h,
       lambda r: r.smart.life_uptime_per_cycle_h_mean, 0.12),
    _t("cluster equivalence ratio", PAPER.equivalence_total,
       lambda r: r.equivalence.ratio_total, 0.12),
    _t("machines with uptime ratio > 0.9", float(PAPER.fig4_above_09),
       lambda r: float(r.ratios.count_above(0.9)), 0.0, abs_tol=2.0),
)


def _first_hour(report: ExperimentReport) -> int:
    from repro.analysis.sessions import first_bucket_above

    hour = first_bucket_above(report.buckets)
    if hour is None:
        raise CalibrationError("no bucket reached 99% idleness")
    return hour


def evaluate_calibration(
    report: ExperimentReport,
    targets: Sequence[CalibrationTarget] = DEFAULT_TARGETS,
) -> List[TargetResult]:
    """Check all targets against a report; returns one result each."""
    if not targets:
        raise CalibrationError("no calibration targets supplied")
    return [t.check(report) for t in targets]
