"""Trace record types.

A :class:`Sample` is the parsed content of one successful W32Probe
execution -- the atom of the whole study (583,653 of them in the paper).
:class:`StaticInfo` holds the per-machine static metrics, stored once.
:class:`TraceMeta` carries the experiment-level context every analysis
needs (attempt accounting, sampling period, fleet identity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Sample", "StaticInfo", "TraceMeta"]


@dataclass(frozen=True, slots=True)
class Sample:
    """One probe report collected from one machine at one instant.

    Field semantics follow W32Probe's wire format (section 3.1 of the
    paper): boot-relative counters reset on reboot; SMART counters span
    the disk's whole life; ``session_start`` is NaN when nobody is logged
    in.
    """

    machine_id: int
    hostname: str
    lab: str
    iteration: int
    t: float                 #: absolute collection time, seconds
    boot_time: float         #: absolute boot time, seconds
    uptime_s: float          #: seconds since boot
    cpu_idle_s: float        #: idle-thread seconds since boot
    mem_load_pct: float      #: main-memory load, 0..100
    swap_load_pct: float     #: pagefile load, 0..100
    disk_total_b: int        #: disk capacity, bytes
    disk_free_b: int         #: free disk space, bytes
    smart_cycles: int        #: SMART power-cycle count (whole life)
    smart_poh_h: float       #: SMART power-on hours (whole life)
    net_sent_b: int          #: NIC bytes sent since boot
    net_recv_b: int          #: NIC bytes received since boot
    has_session: bool        #: an interactive session is open
    username: str = ""       #: session account, "" when free
    session_start: float = float("nan")  #: logon time, NaN when free

    def __post_init__(self) -> None:
        if self.uptime_s < 0:
            raise ValueError("uptime cannot be negative")
        if self.cpu_idle_s < -1e-6 or self.cpu_idle_s > self.uptime_s + 1e-6:
            raise ValueError("idle time must lie within [0, uptime]")
        if self.has_session != bool(self.username):
            raise ValueError("session flag and username are inconsistent")
        if self.has_session and math.isnan(self.session_start):
            raise ValueError("an open session needs a start time")

    @property
    def disk_used_b(self) -> int:
        """Bytes in use on the local disk."""
        return self.disk_total_b - self.disk_free_b

    def session_age(self) -> float:
        """Seconds since logon (NaN when no session is open)."""
        if not self.has_session:
            return float("nan")
        return self.t - self.session_start


@dataclass(frozen=True, slots=True)
class StaticInfo:
    """Static metrics of one machine (section 3.1.1)."""

    machine_id: int
    hostname: str
    lab: str
    cpu_name: str
    cpu_mhz: float
    os_name: str
    ram_mb: int
    swap_mb: int
    disk_serial: str
    disk_total_b: int
    mac: str
    nbench_int: float = float("nan")
    nbench_fp: float = float("nan")

    @property
    def perf_index(self) -> float:
        """50/50 INT+FP combined NBench index (NaN if not benchmarked)."""
        return 0.5 * self.nbench_int + 0.5 * self.nbench_fp


@dataclass
class TraceMeta:
    """Experiment-level context attached to a trace.

    Attributes
    ----------
    n_machines:
        Fleet size the coordinator iterated over.
    sample_period:
        Seconds between iterations (900 in the paper).
    horizon:
        Experiment length in seconds.
    iterations_scheduled / iterations_run:
        Iteration accounting; the paper ran 6,883 of 7,392 possible.
    attempts / timeouts:
        Per-experiment probe attempt accounting (off machines time out).
    access_denied / samples_collected / parse_failures:
        Per-category outcome accounting: credential rejections, attempts
        that yielded a stored sample, and reports the post-collecting
        code dropped as unparseable.
    retries / retries_recovered:
        Transient-failure retry accounting (0 unless the retry layer is
        enabled via ``DdcParams.retry_limit``).
    retries_skipped:
        Failed attempts for which retry budget remained but was withheld
        because the failure is deterministic (credential mismatch, or an
        unreachable machine with ``retry_unreachable`` off).
    shed / breaker_skipped:
        Machine-slots the resilience control plane skipped: load-shed
        under iteration-budget pressure, or blocked by an open circuit
        breaker.  Both 0 unless a ``ResiliencePolicy`` is attached; they
        complete the accounting identity ``iterations_run * n_machines
        == attempts + shed + breaker_skipped``.
    hedges / hedge_wins:
        Hedged duplicate probes dispatched for latency stragglers, and
        how many of the duplicates beat the primary.
    statics:
        Per-machine static info keyed by ``machine_id``.
    """

    n_machines: int
    sample_period: float
    horizon: float
    iterations_scheduled: int = 0
    iterations_run: int = 0
    attempts: int = 0
    timeouts: int = 0
    access_denied: int = 0
    samples_collected: int = 0
    parse_failures: int = 0
    retries: int = 0
    retries_recovered: int = 0
    retries_skipped: int = 0
    shed: int = 0
    breaker_skipped: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    statics: Dict[int, StaticInfo] = field(default_factory=dict)

    @property
    def response_rate(self) -> float:
        """Fraction of probe attempts that produced a sample."""
        if self.attempts == 0:
            return float("nan")
        return 1.0 - self.timeouts / self.attempts

    @property
    def sample_rate(self) -> float:
        """Fraction of attempts that yielded a *stored* sample.

        Equal to :attr:`response_rate` in a fault-free run; lower when
        access-denied storms or telemetry corruption eat attempts that
        were not timeouts.
        """
        if self.attempts == 0:
            return float("nan")
        return self.samples_collected / self.attempts

    #: Counter fields summed across shards by :meth:`merged` (each shard
    #: accounts only the machines it owns, so sums equal the sequential
    #: run's counters).
    _ADDITIVE = (
        "n_machines", "attempts", "timeouts", "access_denied",
        "samples_collected", "parse_failures", "retries",
        "retries_recovered", "retries_skipped", "shed", "breaker_skipped",
        "hedges", "hedge_wins",
    )
    #: Fields every shard must agree on (the coordinator's schedule and
    #: availability draws are replicated identically in every shard).
    _COMMON = ("sample_period", "horizon", "iterations_scheduled",
               "iterations_run")

    @classmethod
    def merged(cls, metas: Sequence["TraceMeta"]) -> "TraceMeta":
        """Combine per-shard metas into the experiment-level meta.

        Counter fields are summed; schedule-level fields must agree
        across shards and per-machine statics must not overlap --
        violations raise :class:`~repro.errors.TraceFormatError`, since a
        mismatch means the inputs are not shards of one experiment.
        """
        from repro.errors import TraceFormatError

        if not metas:
            raise TraceFormatError("cannot merge zero trace metas")
        first = metas[0]
        for name in cls._COMMON:
            values = {getattr(m, name) for m in metas}
            if len(values) > 1:
                raise TraceFormatError(
                    f"shard metas disagree on {name}: {sorted(values)!r}"
                )
        statics: Dict[int, StaticInfo] = {}
        for m in metas:
            overlap = statics.keys() & m.statics.keys()
            if overlap:
                raise TraceFormatError(
                    f"shard metas overlap on machines {sorted(overlap)}"
                )
            statics.update(m.statics)
        out = cls(
            n_machines=0,
            sample_period=first.sample_period,
            horizon=first.horizon,
            iterations_scheduled=first.iterations_scheduled,
            iterations_run=first.iterations_run,
            statics=statics,
        )
        for name in cls._ADDITIVE:
            setattr(out, name, sum(getattr(m, name) for m in metas))
        return out

    def machine_ids(self) -> List[int]:
        """Sorted machine identifiers present in :attr:`statics`."""
        return sorted(self.statics)

    def static_for(self, machine_id: int) -> Optional[StaticInfo]:
        """Static info for one machine, or ``None`` if never collected."""
        return self.statics.get(machine_id)
