"""Trace-store operations: filter, slice, merge.

Downstream users rarely want the whole 583k-sample trace: they slice a
time window, keep one lab, or merge traces from multiple collection
campaigns.  These operations work on :class:`TraceStore` (producing new
stores) so the results remain serialisable and analysable like any
collected trace.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import TraceError
from repro.traces.records import Sample, TraceMeta
from repro.traces.store import TraceStore

__all__ = ["filter_samples", "slice_time", "filter_labs", "filter_machines", "merge"]


def _clone_meta(meta: Optional[TraceMeta]) -> Optional[TraceMeta]:
    if meta is None:
        return None
    out = TraceMeta(
        n_machines=meta.n_machines,
        sample_period=meta.sample_period,
        horizon=meta.horizon,
        iterations_scheduled=meta.iterations_scheduled,
        iterations_run=meta.iterations_run,
        attempts=meta.attempts,
        timeouts=meta.timeouts,
    )
    out.statics = dict(meta.statics)
    return out


def filter_samples(
    store: TraceStore, predicate: Callable[[Sample], bool]
) -> TraceStore:
    """Generic filter: keep samples where ``predicate(sample)`` is true.

    Metadata is cloned as-is: attempt accounting still describes the
    *collection*, not the filtered view -- analyses that need attempt
    denominators should run on unfiltered traces (they validate this).
    """
    out = TraceStore(_clone_meta(store.meta))
    for sample in store.samples():
        if predicate(sample):
            out.add(sample)
    return out


def slice_time(store: TraceStore, t0: float, t1: float) -> TraceStore:
    """Keep samples with ``t0 <= t < t1``.

    Iteration accounting in the metadata is rescaled to the window so
    attempt-based analyses (Table 2 uptime, Fig 3 averages) remain
    meaningful on the slice.
    """
    if t1 <= t0:
        raise TraceError("slice window must have positive length")
    out = filter_samples(store, lambda s: t0 <= s.t < t1)
    meta = out.meta
    if meta is not None and meta.sample_period > 0:
        window = t1 - t0
        frac = min(1.0, window / meta.horizon) if meta.horizon > 0 else 1.0
        meta.horizon = window
        meta.iterations_scheduled = int(round(meta.iterations_scheduled * frac))
        meta.iterations_run = int(round(meta.iterations_run * frac))
        meta.attempts = int(round(meta.attempts * frac))
        meta.timeouts = meta.attempts - len(out)
    return out


def filter_labs(store: TraceStore, labs: Sequence[str]) -> TraceStore:
    """Keep samples from the given labs (e.g. ``["L01", "L02"]``)."""
    wanted = set(labs)
    if not wanted:
        raise TraceError("filter_labs needs at least one lab")
    out = filter_samples(store, lambda s: s.lab in wanted)
    meta = out.meta
    if meta is not None and meta.statics:
        meta.statics = {
            mid: st for mid, st in meta.statics.items() if st.lab in wanted
        }
    return out


def filter_machines(store: TraceStore, machine_ids: Iterable[int]) -> TraceStore:
    """Keep samples from the given machine IDs."""
    wanted = set(machine_ids)
    if not wanted:
        raise TraceError("filter_machines needs at least one machine")
    out = filter_samples(store, lambda s: s.machine_id in wanted)
    meta = out.meta
    if meta is not None and meta.statics:
        meta.statics = {
            mid: st for mid, st in meta.statics.items() if mid in wanted
        }
    return out


def merge(stores: Sequence[TraceStore]) -> TraceStore:
    """Concatenate several stores (e.g. multiple collection campaigns).

    The first store's metadata is used as the base; attempt and
    iteration accounting are summed.  Machine identities must be
    consistent across inputs (same ``machine_id`` -> same host).
    """
    if not stores:
        raise TraceError("merge needs at least one store")
    base = stores[0]
    out = TraceStore(_clone_meta(base.meta))
    hosts: dict[int, str] = {}
    for store in stores:
        for sample in store.samples():
            known = hosts.get(sample.machine_id)
            if known is None:
                hosts[sample.machine_id] = sample.hostname
            elif known != sample.hostname:
                raise TraceError(
                    f"machine_id {sample.machine_id} maps to both "
                    f"{known!r} and {sample.hostname!r}"
                )
            out.add(sample)
    meta = out.meta
    if meta is not None:
        for other in stores[1:]:
            om = other.meta
            if om is None:
                continue
            meta.iterations_scheduled += om.iterations_scheduled
            meta.iterations_run += om.iterations_run
            meta.attempts += om.attempts
            meta.timeouts += om.timeouts
            meta.horizon += om.horizon
            for mid, st in om.statics.items():
                meta.statics.setdefault(mid, st)
    return out
