"""Columnar (struct-of-arrays) trace view for vectorised analysis.

Every analysis in :mod:`repro.analysis` consumes a :class:`ColumnarTrace`:
NumPy arrays sorted by ``(machine_id, t)`` so that consecutive-sample
pairing -- the basis of the paper's CPU-idleness and network-rate
estimators -- is a vectorised slice instead of a Python loop over half a
million records.

The heavy lifting of the whole reproduction happens on these arrays with
masks, ``np.diff`` on sorted views and ``np.bincount`` aggregations,
following the hpc-parallel guidance (vectorise, avoid copies, prefer
views).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AnalysisError
from repro.traces.records import TraceMeta
from repro.traces.store import TraceStore

__all__ = ["ColumnarTrace"]


class ColumnarTrace:
    """Immutable struct-of-arrays view of a trace, sorted by machine, time.

    Attributes (all 1-D arrays of equal length ``n``):

    - ``machine_id`` (int32), ``iteration`` (int32)
    - ``t``, ``boot_time``, ``uptime``, ``idle`` (float64, seconds)
    - ``mem``, ``swap`` (float64, percent)
    - ``disk_total``, ``disk_free`` (int64, bytes)
    - ``cycles`` (int64), ``poh`` (float64, hours) -- SMART counters
    - ``sent``, ``recv`` (int64, bytes since boot)
    - ``has_session`` (bool), ``session_start`` (float64, NaN when free)

    Parameters
    ----------
    store:
        The trace store to snapshot.  Data is copied once (sorting
        requires a materialisation); afterwards the store may keep
        growing without affecting this view.
    """

    def __init__(self, store: TraceStore):
        n = len(store)
        if n == 0:
            raise AnalysisError("cannot build a columnar view of an empty trace")
        machine_id = np.asarray(store.column("machine_id"), dtype=np.int32)
        t = np.asarray(store.column("t"), dtype=np.float64)
        order = np.lexsort((t, machine_id))
        self.machine_id = machine_id[order]
        self.t = t[order]
        self.iteration = np.asarray(store.column("iteration"), dtype=np.int32)[order]
        self.boot_time = np.asarray(store.column("boot_time"), dtype=np.float64)[order]
        self.uptime = np.asarray(store.column("uptime_s"), dtype=np.float64)[order]
        self.idle = np.asarray(store.column("cpu_idle_s"), dtype=np.float64)[order]
        self.mem = np.asarray(store.column("mem_load_pct"), dtype=np.float64)[order]
        self.swap = np.asarray(store.column("swap_load_pct"), dtype=np.float64)[order]
        self.disk_total = np.asarray(store.column("disk_total_b"), dtype=np.int64)[order]
        self.disk_free = np.asarray(store.column("disk_free_b"), dtype=np.int64)[order]
        self.cycles = np.asarray(store.column("smart_cycles"), dtype=np.int64)[order]
        self.poh = np.asarray(store.column("smart_poh_h"), dtype=np.float64)[order]
        self.sent = np.asarray(store.column("net_sent_b"), dtype=np.int64)[order]
        self.recv = np.asarray(store.column("net_recv_b"), dtype=np.int64)[order]
        self.has_session = (
            np.asarray(store.column("has_session"), dtype=np.int8)[order].astype(bool)
        )
        self.session_start = np.asarray(
            store.column("session_start"), dtype=np.float64
        )[order]
        self.meta: Optional[TraceMeta] = store.meta
        for name in ("machine_id", "t", "iteration", "boot_time", "uptime", "idle",
                     "mem", "swap", "disk_total", "disk_free", "cycles", "poh",
                     "sent", "recv", "has_session", "session_start"):
            getattr(self, name).setflags(write=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.t.shape[0]

    @property
    def n_machines(self) -> int:
        """Distinct machines present in the trace."""
        return int(np.unique(self.machine_id).shape[0])

    @property
    def disk_used(self) -> np.ndarray:
        """Bytes in use per sample (derived)."""
        return self.disk_total - self.disk_free

    @property
    def session_age(self) -> np.ndarray:
        """Seconds since logon per sample (NaN where no session)."""
        return self.t - self.session_start

    # ------------------------------------------------------------------
    def consecutive_pairs(self, max_gap: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Indices ``(i, j)`` of consecutive same-machine sample pairs.

        ``j = i + 1`` in the sorted layout; pairs spanning two machines
        are dropped, as are pairs farther apart than ``max_gap`` seconds
        (default: 1.75x the sampling period when meta is available,
        otherwise unlimited).  The gap cap keeps pairwise estimators
        honest across coordinator outages and machine downtime.
        """
        same = self.machine_id[1:] == self.machine_id[:-1]
        if max_gap is None and self.meta is not None:
            max_gap = 1.75 * self.meta.sample_period
        if max_gap is not None:
            same &= (self.t[1:] - self.t[:-1]) <= max_gap
        i = np.flatnonzero(same)
        return i, i + 1

    def reboot_between(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Boolean mask: at least one reboot happened within each pair.

        The paper's detector: the later sample's uptime is too small to
        contain the earlier one, i.e. ``uptime_j < uptime_i + gap`` fails
        (with slack for clock noise).  Equivalent to comparing boot times.
        """
        gap = self.t[j] - self.t[i]
        return self.uptime[j] + 30.0 < self.uptime[i] + gap

    def occupied_mask(self, forgotten_threshold: float | None = 10 * 3600.0) -> np.ndarray:
        """Per-sample "interactively occupied" classification.

        Section 4.2: samples whose interactive session has lasted
        ``forgotten_threshold`` seconds or more (default 10 h) are treated
        as captured on *non-occupied* machines.  Pass ``None`` to use the
        raw login state (as Fig. 6 does).
        """
        if forgotten_threshold is None:
            return self.has_session.copy()
        age = self.session_age
        return self.has_session & ~(age >= forgotten_threshold)
