"""Trace records, storage and columnar views.

- :mod:`repro.traces.records` -- the :class:`Sample` record (one probe
  report) and per-machine static info,
- :mod:`repro.traces.store` -- append-only trace store with CSV / JSONL
  round-trip,
- :mod:`repro.traces.columnar` -- NumPy struct-of-arrays view used by all
  analyses (the hot path; see DESIGN.md section 6).
"""

from repro.traces.records import Sample, StaticInfo, TraceMeta
from repro.traces.store import TraceStore
from repro.traces.columnar import ColumnarTrace
from repro.traces.ops import filter_labs, filter_machines, filter_samples, merge, slice_time

__all__ = [
    "Sample",
    "StaticInfo",
    "TraceMeta",
    "TraceStore",
    "ColumnarTrace",
    "filter_samples",
    "filter_labs",
    "filter_machines",
    "slice_time",
    "merge",
]
