"""Append-only trace storage with CSV / JSONL round-trip.

The coordinator appends one :class:`~repro.traces.records.Sample` per
successful probe execution.  Internally the store is **columnar** --
typed :mod:`array` buffers per field -- so a paper-scale trace (583,653
samples) costs ~70 MB instead of the ~300 MB half a million dataclass
instances would take, and converts to NumPy views without copying.

Two interchange formats are supported:

- **CSV** -- one row per sample, a fixed header, round-trips exactly;
- **JSONL** -- one JSON object per sample; self-describing, slightly
  larger, convenient for external tooling.
"""

from __future__ import annotations

import array
import csv
import json
import math
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from repro.errors import TraceCorruptionError, TraceFormatError
from repro.traces.records import Sample, TraceMeta

__all__ = ["TraceStore", "CSV_FIELDS"]

#: Column order of the CSV format (and of the internal buffers).
CSV_FIELDS = (
    "machine_id",
    "hostname",
    "lab",
    "iteration",
    "t",
    "boot_time",
    "uptime_s",
    "cpu_idle_s",
    "mem_load_pct",
    "swap_load_pct",
    "disk_total_b",
    "disk_free_b",
    "smart_cycles",
    "smart_poh_h",
    "net_sent_b",
    "net_recv_b",
    "has_session",
    "username",
    "session_start",
)


class TraceStore:
    """Columnar, append-only store of probe samples.

    Parameters
    ----------
    meta:
        Experiment metadata; may be attached / replaced later via
        :attr:`meta` (the coordinator finalises counts at the end).
    """

    def __init__(self, meta: TraceMeta | None = None):
        self.meta = meta
        self._machine_id = array.array("i")
        self._iteration = array.array("i")
        self._t = array.array("d")
        self._boot_time = array.array("d")
        self._uptime = array.array("d")
        self._idle = array.array("d")
        self._mem = array.array("d")
        self._swap = array.array("d")
        self._disk_total = array.array("q")
        self._disk_free = array.array("q")
        self._cycles = array.array("q")
        self._poh = array.array("d")
        self._sent = array.array("q")
        self._recv = array.array("q")
        self._has_session = array.array("b")
        self._session_start = array.array("d")
        self._usernames: List[str] = []
        self._hostnames: List[str] = []
        self._labs: List[str] = []

    # ------------------------------------------------------------------
    def add(self, s: Sample) -> None:
        """Append one sample (validation happened in ``Sample.__post_init__``)."""
        self._machine_id.append(s.machine_id)
        self._iteration.append(s.iteration)
        self._t.append(s.t)
        self._boot_time.append(s.boot_time)
        self._uptime.append(s.uptime_s)
        self._idle.append(s.cpu_idle_s)
        self._mem.append(s.mem_load_pct)
        self._swap.append(s.swap_load_pct)
        self._disk_total.append(s.disk_total_b)
        self._disk_free.append(s.disk_free_b)
        self._cycles.append(s.smart_cycles)
        self._poh.append(s.smart_poh_h)
        self._sent.append(s.net_sent_b)
        self._recv.append(s.net_recv_b)
        self._has_session.append(1 if s.has_session else 0)
        self._session_start.append(s.session_start)
        self._usernames.append(s.username)
        self._hostnames.append(s.hostname)
        self._labs.append(s.lab)

    def extend(self, samples: Iterable[Sample]) -> None:
        """Append many samples."""
        for s in samples:
            self.add(s)

    #: (CSV field, attribute, numpy dtype) for every numeric buffer, and
    #: (CSV field, attribute) for the string buffers -- the bulk-append
    #: counterpart of :data:`CSV_FIELDS`.
    _COLUMN_NUMERIC = (
        ("machine_id", "_machine_id", "i4"),
        ("iteration", "_iteration", "i4"),
        ("t", "_t", "f8"),
        ("boot_time", "_boot_time", "f8"),
        ("uptime_s", "_uptime", "f8"),
        ("cpu_idle_s", "_idle", "f8"),
        ("mem_load_pct", "_mem", "f8"),
        ("swap_load_pct", "_swap", "f8"),
        ("disk_total_b", "_disk_total", "i8"),
        ("disk_free_b", "_disk_free", "i8"),
        ("smart_cycles", "_cycles", "i8"),
        ("smart_poh_h", "_poh", "f8"),
        ("net_sent_b", "_sent", "i8"),
        ("net_recv_b", "_recv", "i8"),
        ("has_session", "_has_session", "i1"),
        ("session_start", "_session_start", "f8"),
    )
    _COLUMN_STRINGS = (
        ("username", "_usernames"),
        ("hostname", "_hostnames"),
        ("lab", "_labs"),
    )

    def extend_columns(self, **columns) -> None:
        """Bulk-append one equal-length column per CSV field.

        The columnar DDC pass appends a whole iteration at once instead
        of materialising per-row :class:`Sample` objects.  Rows land in
        positional order -- exactly what the same values fed through
        sequential :meth:`add` calls would produce.  Numeric columns go
        through the buffer's exact dtype (integer casts truncate toward
        zero, matching ``int()``); string columns are list-extended.
        """
        import numpy as np

        n: int | None = None
        for field, attr, dtype in self._COLUMN_NUMERIC:
            col = np.ascontiguousarray(columns.pop(field), dtype=dtype)
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise TraceFormatError(
                    f"column {field!r} has length {len(col)}, expected {n}"
                )
            getattr(self, attr).frombytes(col.tobytes())
        for field, attr in self._COLUMN_STRINGS:
            vals = columns.pop(field)
            if len(vals) != n:
                raise TraceFormatError(
                    f"column {field!r} has length {len(vals)}, expected {n}"
                )
            getattr(self, attr).extend(vals)
        if columns:
            raise TraceFormatError(
                f"unknown trace columns {sorted(columns)!r}"
            )

    def __len__(self) -> int:
        return len(self._t)

    # ------------------------------------------------------------------
    def sample_at(self, i: int) -> Sample:
        """Materialise the ``i``-th sample as a :class:`Sample` object."""
        return Sample(
            machine_id=self._machine_id[i],
            hostname=self._hostnames[i],
            lab=self._labs[i],
            iteration=self._iteration[i],
            t=self._t[i],
            boot_time=self._boot_time[i],
            uptime_s=self._uptime[i],
            cpu_idle_s=self._idle[i],
            mem_load_pct=self._mem[i],
            swap_load_pct=self._swap[i],
            disk_total_b=self._disk_total[i],
            disk_free_b=self._disk_free[i],
            smart_cycles=self._cycles[i],
            smart_poh_h=self._poh[i],
            net_sent_b=self._sent[i],
            net_recv_b=self._recv[i],
            has_session=bool(self._has_session[i]),
            username=self._usernames[i],
            session_start=self._session_start[i],
        )

    def samples(self) -> Iterator[Sample]:
        """Iterate all samples as :class:`Sample` objects (lazily)."""
        for i in range(len(self)):
            yield self.sample_at(i)

    # ------------------------------------------------------------------
    # shard merge
    # ------------------------------------------------------------------
    #: (attribute, array typecode, numpy dtype) of every numeric buffer.
    _NUMERIC_BUFFERS = (
        ("_machine_id", "i", "i4"),
        ("_iteration", "i", "i4"),
        ("_t", "d", "f8"),
        ("_boot_time", "d", "f8"),
        ("_uptime", "d", "f8"),
        ("_idle", "d", "f8"),
        ("_mem", "d", "f8"),
        ("_swap", "d", "f8"),
        ("_disk_total", "q", "i8"),
        ("_disk_free", "q", "i8"),
        ("_cycles", "q", "i8"),
        ("_poh", "d", "f8"),
        ("_sent", "q", "i8"),
        ("_recv", "q", "i8"),
        ("_has_session", "b", "i1"),
        ("_session_start", "d", "f8"),
    )
    _STRING_BUFFERS = ("_usernames", "_hostnames", "_labs")

    @classmethod
    def merge(cls, stores: "Sequence[TraceStore]") -> "TraceStore":
        """Merge per-shard stores into one deterministically ordered trace.

        Rows are re-ordered by ``(iteration, machine_id)``.  Because the
        roster is numbered fleet-wide in lab order and probed in that
        order within every iteration, this sort reproduces the sequential
        coordinator's append order exactly -- a merged trace is
        byte-identical to the unsharded run's CSV/JSONL export.

        Metadata merges via :meth:`TraceMeta.merged` (counters summed,
        schedule fields required to agree).  Guards raise
        :class:`~repro.errors.TraceFormatError`:

        - no stores, or a mix of with-meta and meta-less stores;
        - shard metas that disagree on period/horizon/iterations;
        - overlapping ``machine_id`` sets (two shards claiming the same
          machine would mean double-counted samples, never a valid plan).
        """
        import numpy as np

        stores = list(stores)
        if not stores:
            raise TraceFormatError("cannot merge zero trace stores")
        metas = [st.meta for st in stores]
        if any(m is None for m in metas) and any(m is not None for m in metas):
            raise TraceFormatError(
                "cannot merge stores with and without metadata"
            )
        meta = TraceMeta.merged(metas) if metas[0] is not None else None
        id_arrays = [
            np.frombuffer(st._machine_id, dtype="i4") for st in stores
        ]
        seen: set = set()
        for st, ids in zip(stores, id_arrays):
            present = set(np.unique(ids).tolist())
            overlap = seen & present
            if overlap:
                raise TraceFormatError(
                    f"stores overlap on machine ids {sorted(overlap)[:8]}; "
                    "shards must own disjoint machine sets"
                )
            seen |= present
        machine_id = np.concatenate(id_arrays)
        iteration = np.concatenate(
            [np.frombuffer(st._iteration, dtype="i4") for st in stores]
        )
        # lexsort keys run least-significant first; stability is moot
        # because (iteration, machine_id) pairs are unique per store and
        # disjoint across stores.
        perm = np.lexsort((machine_id, iteration))
        out = cls(meta)
        for attr, typecode, dtype in cls._NUMERIC_BUFFERS:
            col = np.concatenate(
                [np.frombuffer(getattr(st, attr), dtype=dtype)
                 for st in stores]
            )[perm]
            buf = array.array(typecode)
            buf.frombytes(col.tobytes())
            setattr(out, attr, buf)
        for attr in cls._STRING_BUFFERS:
            combined: List[str] = []
            for st in stores:
                combined.extend(getattr(st, attr))
            setattr(out, attr, [combined[i] for i in perm])
        return out

    # ------------------------------------------------------------------
    # raw column access (consumed by ColumnarTrace)
    # ------------------------------------------------------------------
    def column(self, name: str):
        """Return the raw internal buffer for column ``name``."""
        mapping = {
            "machine_id": self._machine_id,
            "iteration": self._iteration,
            "t": self._t,
            "boot_time": self._boot_time,
            "uptime_s": self._uptime,
            "cpu_idle_s": self._idle,
            "mem_load_pct": self._mem,
            "swap_load_pct": self._swap,
            "disk_total_b": self._disk_total,
            "disk_free_b": self._disk_free,
            "smart_cycles": self._cycles,
            "smart_poh_h": self._poh,
            "net_sent_b": self._sent,
            "net_recv_b": self._recv,
            "has_session": self._has_session,
            "session_start": self._session_start,
            "username": self._usernames,
            "hostname": self._hostnames,
            "lab": self._labs,
        }
        try:
            return mapping[name]
        except KeyError:
            raise TraceFormatError(f"unknown trace column {name!r}") from None

    # ------------------------------------------------------------------
    # CSV
    # ------------------------------------------------------------------
    def write_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV with the :data:`CSV_FIELDS` header."""
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(CSV_FIELDS)
            for i in range(len(self)):
                w.writerow(self._row(i))

    def _row(self, i: int) -> tuple:
        ss = self._session_start[i]
        return (
            self._machine_id[i],
            self._hostnames[i],
            self._labs[i],
            self._iteration[i],
            repr(self._t[i]),
            repr(self._boot_time[i]),
            repr(self._uptime[i]),
            repr(self._idle[i]),
            repr(self._mem[i]),
            repr(self._swap[i]),
            self._disk_total[i],
            self._disk_free[i],
            self._cycles[i],
            repr(self._poh[i]),
            self._sent[i],
            self._recv[i],
            self._has_session[i],
            self._usernames[i],
            "" if math.isnan(ss) else repr(ss),
        )

    @classmethod
    def read_csv(cls, path: Union[str, Path], meta: TraceMeta | None = None) -> "TraceStore":
        """Read a trace written by :meth:`write_csv`."""
        store = cls(meta)
        with open(path, newline="") as fh:
            r = csv.reader(fh)
            header = next(r, None)
            if header is None or tuple(header) != CSV_FIELDS:
                raise TraceFormatError(f"bad CSV header in {path}")
            for row in r:
                if len(row) != len(CSV_FIELDS):
                    raise TraceCorruptionError(
                        f"bad CSV row width in {path}: {row!r}"
                    )
                store.add(_sample_from_strings(row))
        return store

    # ------------------------------------------------------------------
    # JSONL
    # ------------------------------------------------------------------
    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as one JSON object per line."""
        with open(path, "w") as fh:
            for s in self.samples():
                d = {k: getattr(s, k) for k in Sample.__slots__}
                if math.isnan(d["session_start"]):
                    d["session_start"] = None
                fh.write(json.dumps(d) + "\n")

    @classmethod
    def read_jsonl(cls, path: Union[str, Path], meta: TraceMeta | None = None) -> "TraceStore":
        """Read a trace written by :meth:`write_jsonl`."""
        store = cls(meta)
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceCorruptionError(
                        f"{path}:{line_no}: bad JSON"
                    ) from exc
                if d.get("session_start") is None:
                    d["session_start"] = float("nan")
                try:
                    store.add(Sample(**d))
                except (TypeError, ValueError) as exc:
                    raise TraceCorruptionError(
                        f"{path}:{line_no}: {exc}"
                    ) from exc
        return store


def _sample_from_strings(row: List[str]) -> Sample:
    """Parse one CSV row back into a :class:`Sample`."""
    try:
        return Sample(
            machine_id=int(row[0]),
            hostname=row[1],
            lab=row[2],
            iteration=int(row[3]),
            t=float(row[4]),
            boot_time=float(row[5]),
            uptime_s=float(row[6]),
            cpu_idle_s=float(row[7]),
            mem_load_pct=float(row[8]),
            swap_load_pct=float(row[9]),
            disk_total_b=int(row[10]),
            disk_free_b=int(row[11]),
            smart_cycles=int(row[12]),
            smart_poh_h=float(row[13]),
            net_sent_b=int(row[14]),
            net_recv_b=int(row[15]),
            has_session=bool(int(row[16])),
            username=row[17],
            session_start=float(row[18]) if row[18] else float("nan"),
        )
    except (ValueError, IndexError) as exc:
        raise TraceCorruptionError(f"bad CSV row: {row!r}") from exc
