"""Network fault family: deterministic failures at the framing layer.

The machine-level :class:`~repro.faults.plan.FaultPlan` injects failures
into the *simulated* DDC network (unreachable machines, slow probes).
This module injects failures into the *real* control-plane network of a
:mod:`repro.shard.net` campaign: the TCP connections between the
coordinator and its shard workers.  Scenarios are consulted by the
coordinator-side :class:`~repro.shard.net.framing.FramedChannel` on
every frame, in both directions, so one seeded plan deterministically
exercises connection drops, partitions, message delay and duplication,
and slow links -- without monkeypatching sockets.

Determinism
-----------
Decisions key on **frame counts** (per connection, per direction), not
wall-clock time, and any randomness comes from the plan's private
seeded generator -- so the same ``(scenarios, seed)`` pair injects at
the same protocol points every run.  Injection *timing* still depends
on scheduling, but the control plane's recovery guarantees make the
merged campaign output byte-identical regardless of where in the run a
drop lands (``docs/distributed.md``).

Every injection is tallied in :attr:`NetworkFaultPlan.injected` by
category (:data:`NETWORK_FAULT_CATEGORIES`) so chaos harnesses can
assert the plan actually fired.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "NETWORK_FAULT_CATEGORIES",
    "FrameInfo",
    "NetAction",
    "NetFaultScenario",
    "NetworkFaultPlan",
    "ConnectionDrop",
    "Partition",
    "MessageDelay",
    "MessageDuplicate",
    "SlowLink",
    "ShardHolderDrop",
]

#: Injection-accounting categories, in reporting order.
NETWORK_FAULT_CATEGORIES = (
    "net_disconnect",
    "net_partition",
    "net_delay",
    "net_duplicate",
    "net_slow_link",
)


@dataclass(frozen=True)
class FrameInfo:
    """What the framing layer knows about one frame being moved.

    Attributes
    ----------
    conn_id:
        Coordinator-side connection ordinal (0 for the first accepted
        worker connection, monotonically increasing across reconnects).
    direction:
        ``"send"`` (coordinator -> worker) or ``"recv"``.
    kind:
        Protocol message class name (``"Heartbeat"``, ``"Assign"``,
        ...); empty on the receive path, where the frame has not been
        decoded yet.
    worker / shard:
        Registered worker id and currently-leased shard of the
        connection's peer, once known (``None`` before ``Hello`` /
        before a lease is granted).
    count:
        Frames moved through this connection in this direction so far,
        1-based including the current frame.
    """

    conn_id: int
    direction: str
    kind: str
    worker: Optional[str]
    shard: Optional[int]
    count: int


@dataclass(frozen=True)
class NetAction:
    """One injected behaviour for the current frame.

    ``category`` must be one of :data:`NETWORK_FAULT_CATEGORIES`:

    - ``net_disconnect`` -- tear the connection (the frame is lost and
      the channel raises :class:`~repro.errors.ChannelClosed`);
    - ``net_partition`` -- blackhole the frame (silently discarded;
      the sender believes it was delivered);
    - ``net_delay`` -- deliver after ``seconds``;
    - ``net_duplicate`` -- deliver the frame twice (the framing layer's
      sequence numbers dedupe it on the receive side);
    - ``net_slow_link`` -- throttle by ``seconds`` (size-derived).
    """

    category: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in NETWORK_FAULT_CATEGORIES:
            raise ValueError(
                f"unknown network fault category {self.category!r}; "
                f"expected one of {NETWORK_FAULT_CATEGORIES}"
            )
        if self.seconds < 0:
            raise ValueError("fault delay must be non-negative")


class NetFaultScenario:
    """Base class of one composable network failure mode.

    :meth:`on_frame` returns a :class:`NetAction` to inject for this
    frame, or ``None`` to leave it alone.  Scenarios may keep private
    counters; the plan consults them under a lock, so they need no
    locking of their own.
    """

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        return None


def _matches(info: FrameInfo, conn_id: Optional[int], worker: Optional[str],
             shard: Optional[int]) -> bool:
    """Shared targeting filter: ``None`` matches everything."""
    if conn_id is not None and info.conn_id != conn_id:
        return False
    if worker is not None and info.worker != worker:
        return False
    if shard is not None and info.shard != shard:
        return False
    return True


@dataclass
class ConnectionDrop(NetFaultScenario):
    """Tear a connection when its frame count hits ``at_count``.

    The classic kill point: the coordinator's side of the socket is
    closed mid-conversation, the worker's next heartbeat send fails,
    the worker hard-stops its run and reconnects-with-resume.  Fires at
    most ``times`` times (once by default).
    """

    at_count: int = 10
    direction: str = "recv"
    conn_id: Optional[int] = None
    worker: Optional[str] = None
    shard: Optional[int] = None
    times: int = 1
    fired: int = field(default=0, repr=False)

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if self.fired >= self.times or info.direction != self.direction:
            return None
        if not _matches(info, self.conn_id, self.worker, self.shard):
            return None
        if info.count >= self.at_count:
            self.fired += 1
            return NetAction("net_disconnect")
        return None


@dataclass
class Partition(NetFaultScenario):
    """Blackhole a window of frames: the link is up but delivers nothing.

    While a connection's frame count (in the given direction) lies in
    ``[start, start + length)``, frames are silently discarded.  Unlike
    a drop, neither side sees an error -- the coordinator learns about
    the partition only when the lease's liveness deadline expires, which
    is exactly the failure mode that forces lease-based recovery.
    """

    start: int = 5
    length: int = 10
    direction: str = "recv"
    conn_id: Optional[int] = None
    worker: Optional[str] = None
    shard: Optional[int] = None

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if info.direction != self.direction:
            return None
        if not _matches(info, self.conn_id, self.worker, self.shard):
            return None
        if self.start <= info.count < self.start + self.length:
            return NetAction("net_partition")
        return None


@dataclass
class MessageDelay(NetFaultScenario):
    """Delay every ``every``-th frame by ``seconds``."""

    every: int = 5
    seconds: float = 0.002
    direction: str = "recv"

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if info.direction != self.direction or self.every < 1:
            return None
        if info.count % self.every == 0:
            return NetAction("net_delay", seconds=self.seconds)
        return None


@dataclass
class MessageDuplicate(NetFaultScenario):
    """Duplicate every ``every``-th *sent* frame.

    The framing layer's per-channel sequence numbers make delivery
    exactly-once on the receive side; this scenario proves it.
    """

    every: int = 4

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if info.direction != "send" or self.every < 1:
            return None
        if info.count % self.every == 0:
            return NetAction("net_duplicate")
        return None


@dataclass
class SlowLink(NetFaultScenario):
    """Throttle a connection: ``seconds_per_kb`` of delay per kilobyte.

    The framing layer reports the frame size through ``rng``-free
    plumbing (the plan passes size-derived seconds); here we approximate
    with a flat per-frame cost scaled by ``seconds_per_kb`` on the
    sending side, capped so a huge outcome frame cannot stall CI.
    """

    seconds_per_kb: float = 0.0005
    cap: float = 0.05
    conn_id: Optional[int] = None
    worker: Optional[str] = None

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if info.direction != "send":
            return None
        if not _matches(info, self.conn_id, self.worker, None):
            return None
        return NetAction("net_slow_link",
                         seconds=min(self.cap, self.seconds_per_kb))


@dataclass
class ShardHolderDrop(NetFaultScenario):
    """Repeatedly kill whichever connection holds a shard's lease.

    Drops the holder's connection once ``after`` frames have moved since
    the current connection started carrying the shard.  With
    ``times=None`` it fires on every holder forever -- the way to burn
    a shard's whole regrant budget and force the degraded merge.
    """

    shard: int = 0
    after: int = 5
    times: Optional[int] = None
    fired: int = field(default=0, repr=False)
    _seen: dict = field(default_factory=dict, repr=False)

    def on_frame(self, info: FrameInfo,
                 rng: np.random.Generator) -> Optional[NetAction]:
        if info.shard != self.shard:
            return None
        if self.times is not None and self.fired >= self.times:
            return None
        seen = self._seen.get(info.conn_id, 0) + 1
        self._seen[info.conn_id] = seen
        if seen >= self.after:
            self.fired += 1
            del self._seen[info.conn_id]
            return NetAction("net_disconnect")
        return None


class NetworkFaultPlan:
    """An ordered composition of network fault scenarios with one RNG.

    The coordinator hands the plan to every
    :class:`~repro.shard.net.framing.FramedChannel` it owns; channels
    call :meth:`consult` per frame.  The first scenario returning an
    action wins (matching the machine-level plan's short-circuit
    discipline) and is tallied in :attr:`injected`.

    Thread safety: reader threads and the coordinator's main loop
    consult concurrently, so scenario state and the ledger are guarded
    by one lock.
    """

    def __init__(self, scenarios: Sequence[NetFaultScenario] = (),
                 seed: int = 0):
        self.scenarios: Tuple[NetFaultScenario, ...] = tuple(scenarios)
        for s in self.scenarios:
            if not isinstance(s, NetFaultScenario):
                raise TypeError(f"not a NetFaultScenario: {s!r}")
        self.seed = int(seed)
        self.rng = np.random.Generator(np.random.PCG64(self.seed))
        #: Injection tally by category
        #: (see :data:`NETWORK_FAULT_CATEGORIES`).
        self.injected: Counter = Counter()
        self._lock = threading.Lock()

    @property
    def empty(self) -> bool:
        """Whether the plan injects nothing (channels then bypass it)."""
        return not self.scenarios

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(type(s).__name__ for s in self.scenarios)
        return f"NetworkFaultPlan([{names}], seed={self.seed})"

    def consult(self, info: FrameInfo) -> Optional[NetAction]:
        """First scenario-injected action for this frame, tallied."""
        if not self.scenarios:
            return None
        with self._lock:
            for s in self.scenarios:
                action = s.on_frame(info, self.rng)
                if action is not None:
                    self.injected[action.category] += 1
                    return action
        return None
