"""Deterministic fault injection for the DDC collection pipeline.

- :mod:`repro.faults.plan` -- the :class:`FaultPlan` hook interface and
  the :class:`FaultScenario` base class,
- :mod:`repro.faults.scenarios` -- the scenario catalog (outages,
  partitions, flapping, latency inflation, corruption, auth storms).

See ``docs/fault_injection.md`` for the guide.
"""

from repro.faults.plan import FAULT_CATEGORIES, FaultPlan, FaultScenario
from repro.faults.scenarios import (
    AccessDeniedStorm,
    CoordinatorOutage,
    FlappingHost,
    NetworkPartition,
    SlowMachines,
    StdoutCorruption,
    paper_like_plan,
)

__all__ = [
    "FAULT_CATEGORIES",
    "FaultPlan",
    "FaultScenario",
    "CoordinatorOutage",
    "NetworkPartition",
    "FlappingHost",
    "SlowMachines",
    "StdoutCorruption",
    "AccessDeniedStorm",
    "paper_like_plan",
]
