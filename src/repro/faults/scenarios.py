"""The scenario catalog: concrete failure modes for :class:`FaultPlan`.

Each scenario reproduces one failure structure observed in real
monitoring deployments (Grid'5000's failure report, the paper's own
6.9% iteration loss): maintenance windows, dead switches, flapping
hosts, overloaded machines, garbled telemetry and authentication storms.
``docs/fault_injection.md`` documents the catalog and how to extend it.

All scenarios are window-scoped: they act only inside ``[start, end)``
(defaults: the whole run) so outages can be dotted over a timeline by
composing several instances.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, FaultScenario
from repro.sim.random import stable_hash32

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machines.machine import SimMachine

__all__ = [
    "CoordinatorOutage",
    "NetworkPartition",
    "FlappingHost",
    "SlowMachines",
    "StdoutCorruption",
    "AccessDeniedStorm",
    "paper_like_plan",
]


def _check_window(start: float, end: float) -> Tuple[float, float]:
    if math.isnan(start) or math.isnan(end) or end <= start:
        raise ValueError(f"fault window must be ordered, got [{start}, {end})")
    return float(start), float(end)


class _Windowed(FaultScenario):
    """Shared ``[start, end)`` window logic."""

    def __init__(self, start: float = 0.0, end: float = math.inf):
        self.start, self.end = _check_window(start, end)

    def active(self, t: float) -> bool:
        """Whether ``t`` falls inside the scenario's window."""
        return self.start <= t < self.end


class CoordinatorOutage(_Windowed):
    """The coordinator host is down for a wall-clock window.

    The paper lost 509 of 7,392 iterations to exactly this (section 4.2);
    an outage window models a crash or maintenance reboot rather than the
    memoryless per-iteration coin of ``coordinator_availability``.
    """

    def coordinator_down(
        self, t: float, iteration: int, rng: np.random.Generator
    ) -> bool:
        return self.active(t)


class NetworkPartition(_Windowed):
    """A lab-level switch failure: whole labs drop off the network.

    Machines in the named labs are unreachable during the window --
    the coordinator pays the usual off-machine timeout for each, which is
    indistinguishable from the machines being powered off (as in the real
    system, where DDC cannot tell a dead switch from a dead PC).
    """

    def __init__(
        self, labs: Iterable[str], start: float = 0.0, end: float = math.inf
    ):
        super().__init__(start, end)
        self.labs = frozenset(labs)
        if not self.labs:
            raise ValueError("a partition needs at least one lab")

    def unreachable(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> bool:
        return self.active(t) and machine.spec.lab in self.labs


class FlappingHost(_Windowed):
    """Hosts whose link flaps with a fixed period and duty cycle.

    During the "down" phase of each period the host is unreachable.  The
    phase is keyed to the host id, so different hosts flap out of sync.
    """

    def __init__(
        self,
        machine_ids: Iterable[int],
        period: float = 3600.0,
        down_fraction: float = 0.5,
        start: float = 0.0,
        end: float = math.inf,
    ):
        super().__init__(start, end)
        self.machine_ids = frozenset(int(m) for m in machine_ids)
        if period <= 0:
            raise ValueError("flap period must be positive")
        if not 0.0 < down_fraction < 1.0:
            raise ValueError("down_fraction must be in (0, 1)")
        self.period = float(period)
        self.down_fraction = float(down_fraction)

    def unreachable(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> bool:
        mid = machine.spec.machine_id
        if not self.active(t) or mid not in self.machine_ids:
            return False
        phase_shift = (stable_hash32(f"flap:{mid}") / 2**32) * self.period
        phase = (t + phase_shift) % self.period
        return phase < self.down_fraction * self.period

    def flapped_ids(self) -> Sequence[int]:
        """The affected machine ids, sorted (for reports and tests)."""
        return sorted(self.machine_ids)


class SlowMachines(_Windowed):
    """Latency inflation on a deterministic subset of the fleet.

    A stable hash of the machine id selects ``fraction`` of the roster
    (the same machines every run, any seed), whose remote-execution
    latency is multiplied by ``factor`` -- ailing disks, thrashing swap,
    a saturated uplink.
    """

    def __init__(
        self,
        fraction: float,
        factor: float,
        start: float = 0.0,
        end: float = math.inf,
    ):
        super().__init__(start, end)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if factor <= 1.0:
            raise ValueError("latency factor must exceed 1")
        self.fraction = float(fraction)
        self.factor = float(factor)

    def affects(self, machine_id: int) -> bool:
        """Whether ``machine_id`` belongs to the slow subset."""
        return stable_hash32(f"slow:{machine_id}") / 2**32 < self.fraction

    def latency_factor(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> float:
        if self.active(t) and self.affects(machine.spec.machine_id):
            return self.factor
        return 1.0


class StdoutCorruption(_Windowed):
    """Garbled telemetry: probe stdout is truncated or byte-mangled.

    With probability ``probability`` per successful execution the
    captured stdout is replaced by a corrupted variant:

    - ``"truncate"`` keeps only a 10-60% prefix (a dropped connection
      mid-stream), which is guaranteed unparseable -- W32Probe's required
      trailing fields are gone;
    - ``"garble"`` overwrites a run of bytes with ``'#'`` (line noise).

    Corruption is the one fault that travels *through* the executor into
    the post-collecting code, which must drop it (run the experiment with
    ``strict_postcollect=False``, as a long-lived collector would).
    """

    MODES = ("truncate", "garble")

    def __init__(
        self,
        probability: float,
        mode: str = "truncate",
        start: float = 0.0,
        end: float = math.inf,
    ):
        super().__init__(start, end)
        if not 0.0 < probability <= 1.0:
            raise ValueError("corruption probability must be in (0, 1]")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.probability = float(probability)
        self.mode = mode

    def corrupt_stdout(
        self,
        t: float,
        machine: "SimMachine",
        stdout: str,
        rng: np.random.Generator,
    ) -> Optional[str]:
        if not self.active(t) or rng.random() >= self.probability:
            return None
        if self.mode == "truncate":
            cut = max(1, int(len(stdout) * rng.uniform(0.1, 0.6)))
            return stdout[:cut]
        lo = int(rng.uniform(0.0, 0.5) * len(stdout))
        hi = min(len(stdout), lo + max(8, len(stdout) // 4))
        return stdout[:lo] + "#" * (hi - lo) + stdout[hi:]


class AccessDeniedStorm(_Windowed):
    """Transient authentication failures (a DC overload / replication lag).

    Each attempt inside the window independently fails with probability
    ``probability`` -- the canonical *retryable* fault: a retry with
    backoff usually lands after the domain controller recovers.
    """

    def __init__(
        self, probability: float, start: float = 0.0, end: float = math.inf
    ):
        super().__init__(start, end)
        if not 0.0 < probability <= 1.0:
            raise ValueError("storm probability must be in (0, 1]")
        self.probability = float(probability)

    def denies_access(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> bool:
        return self.active(t) and rng.random() < self.probability


# ----------------------------------------------------------------------
def paper_like_plan(
    horizon: float, labs: Sequence[str] = ("lab1",), seed: int = 0
) -> FaultPlan:
    """A documented chaos composition reproducing the paper's loss regime.

    Applied to a fleet of *always-on* machines (where the baseline
    response rate would be ~100%), the composition drags the response
    rate into the paper's ~50% band using failure structure alone:

    - an access-denied storm over the whole run (p = 0.42),
    - a partition of ``labs`` for the middle fifth of the run,
    - a coordinator outage for 5% of the run (near the paper's 6.9%
      iteration loss, on top of ``coordinator_availability``),
    - light telemetry corruption (p = 0.03).

    ``tests/faults/test_chaos_regression.py`` pins the resulting regime
    (response rate in [0.45, 0.55]) and shows bounded retry recovering
    most of the storm's losses.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    return FaultPlan(
        [
            AccessDeniedStorm(probability=0.42),
            NetworkPartition(labs, start=0.40 * horizon, end=0.60 * horizon),
            CoordinatorOutage(start=0.70 * horizon, end=0.75 * horizon),
            StdoutCorruption(probability=0.03, mode="truncate"),
        ],
        seed=seed,
    )
