"""Deterministic fault-injection plans.

The paper's collector was itself lossy -- 509 of 7,392 iterations never
ran, only 50.2% of probe attempts returned a sample -- and the analyses
survive that loss.  :class:`FaultPlan` lets an experiment *manufacture*
such loss deliberately: it composes :class:`FaultScenario` objects
(coordinator outages, lab partitions, flapping hosts, latency inflation,
telemetry corruption, access-denied storms) and exposes a small hook
interface the DDC layers consult at well-defined points:

- :class:`~repro.ddc.coordinator.DdcCoordinator` asks
  :meth:`FaultPlan.coordinator_down` before each iteration,
- :class:`~repro.ddc.remote.RemoteExecutor` asks
  :meth:`FaultPlan.unreachable`, :meth:`FaultPlan.latency_factor`,
  :meth:`FaultPlan.denies_access` and :meth:`FaultPlan.corrupt_stdout`
  around each remote execution; corrupted stdout then flows into the
  post-collecting code exactly like any other probe output.

Determinism guarantees
----------------------
- The plan owns a private :class:`numpy.random.Generator` seeded from
  ``seed``; it never touches the experiment's streams.  Hook calls occur
  in the (deterministic) order the simulation makes them, so the same
  ``(experiment seed, plan seed, scenarios)`` triple always produces a
  bitwise-identical trace.
- An **empty** plan is inert by construction: the consuming layers drop
  the reference at construction time (``faults=None`` internally), so no
  hook runs and no random draw happens -- output is bitwise-identical to
  a run without any fault plumbing.  ``tests/faults/test_determinism.py``
  enforces both properties.

Every injection is tallied in :attr:`FaultPlan.injected` by category so
reports can compare injected against observed failure rates
(:func:`repro.report.faults.render_fault_report`).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.machines.machine import SimMachine

__all__ = ["FaultScenario", "FaultPlan", "FAULT_CATEGORIES"]

#: Injection-accounting categories, in reporting order.
FAULT_CATEGORIES = (
    "coordinator_outage",
    "unreachable",
    "slow_latency",
    "access_denied",
    "corruption",
)


class FaultScenario:
    """Base class of one composable failure mode.

    Every hook is a no-op here; scenarios override the hooks they care
    about.  Hooks receive the plan's private ``rng`` so stochastic
    scenarios stay reproducible without touching experiment streams.
    """

    def coordinator_down(
        self, t: float, iteration: int, rng: np.random.Generator
    ) -> bool:
        """Whether the coordinator is down for the iteration at ``t``."""
        return False

    def unreachable(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> bool:
        """Whether ``machine`` is cut off the network at ``t``."""
        return False

    def latency_factor(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> float:
        """Multiplier applied to the remote-execution latency (1 = none)."""
        return 1.0

    def denies_access(
        self, t: float, machine: "SimMachine", rng: np.random.Generator
    ) -> bool:
        """Whether the attempt fails with a transient logon error."""
        return False

    def corrupt_stdout(
        self,
        t: float,
        machine: "SimMachine",
        stdout: str,
        rng: np.random.Generator,
    ) -> Optional[str]:
        """Corrupted replacement for ``stdout``, or ``None`` to pass through."""
        return None


class FaultPlan:
    """An ordered composition of fault scenarios with its own RNG.

    Parameters
    ----------
    scenarios:
        Scenario objects, consulted in order.  Boolean hooks short-circuit
        on the first scenario that triggers; latency factors multiply.
    seed:
        Seed of the plan's private random stream.  Two plans built with
        the same scenarios and seed inject identically.
    """

    def __init__(self, scenarios: Sequence[FaultScenario] = (), seed: int = 0):
        self.scenarios: Tuple[FaultScenario, ...] = tuple(scenarios)
        for s in self.scenarios:
            if not isinstance(s, FaultScenario):
                raise TypeError(f"not a FaultScenario: {s!r}")
        self.seed = int(seed)
        self.rng = np.random.Generator(np.random.PCG64(self.seed))
        #: Injection tally by category (see :data:`FAULT_CATEGORIES`).
        self.injected: Counter = Counter()

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """Whether the plan injects nothing (consumers then bypass it)."""
        return not self.scenarios

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(type(s).__name__ for s in self.scenarios)
        return f"FaultPlan([{names}], seed={self.seed})"

    # ------------------------------------------------------------------
    # hooks (consulted by the DDC layers)
    # ------------------------------------------------------------------
    def coordinator_down(self, t: float, iteration: int) -> bool:
        """Whether any scenario takes the coordinator down at ``t``."""
        for s in self.scenarios:
            if s.coordinator_down(t, iteration, self.rng):
                self.injected["coordinator_outage"] += 1
                return True
        return False

    def unreachable(self, t: float, machine: "SimMachine") -> bool:
        """Whether any scenario severs ``machine`` from the network."""
        for s in self.scenarios:
            if s.unreachable(t, machine, self.rng):
                self.injected["unreachable"] += 1
                return True
        return False

    def latency_factor(self, t: float, machine: "SimMachine") -> float:
        """Combined latency multiplier across scenarios (>= 0)."""
        factor = 1.0
        for s in self.scenarios:
            factor *= s.latency_factor(t, machine, self.rng)
        if factor != 1.0:
            self.injected["slow_latency"] += 1
        return factor

    def denies_access(self, t: float, machine: "SimMachine") -> bool:
        """Whether any scenario injects a transient logon failure."""
        for s in self.scenarios:
            if s.denies_access(t, machine, self.rng):
                self.injected["access_denied"] += 1
                return True
        return False

    def corrupt_stdout(
        self, t: float, machine: "SimMachine", stdout: str
    ) -> Optional[str]:
        """First scenario-corrupted stdout, or ``None`` when untouched."""
        for s in self.scenarios:
            corrupted = s.corrupt_stdout(t, machine, stdout, self.rng)
            if corrupted is not None:
                self.injected["corruption"] += 1
                return corrupted
        return None
