#!/usr/bin/env python3
"""Forgotten logins: reproduce the section-4.2 detective work.

Users forget to log out, leaving ghost sessions that would inflate any
naive "machine is occupied" statistic.  The paper grouped login samples
by relative session hour, saw CPU idleness cross 99% at hour 10, and
reclassified samples with session age >= 10 h as free.

This example rebuilds Fig 2, validates the detected ghosts against the
simulator's ground truth (which *knows* who walked away), and sweeps the
threshold to show how Table 2 responds.

Usage::

    python examples/forgotten_sessions.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.analysis.cpu import pairwise_cpu
from repro.analysis.mainresults import compute_main_results
from repro.analysis.sessions import (
    first_bucket_above,
    forgotten_stats,
    relative_hour_buckets,
)
from repro.report.series import render_sparkline
from repro.report.tables import Table


def main(days: int = 10, seed: int = 3) -> None:
    result = run_experiment(ExperimentConfig(days=days, seed=seed))
    trace = result.trace
    pairs = pairwise_cpu(trace)

    # -- Fig 2 ----------------------------------------------------------
    buckets = relative_hour_buckets(trace, pairs)
    print("Fig 2 -- mean CPU idleness by relative session hour:")
    table = Table(["hour", "samples", "idle %"])
    for h in range(14):
        table.add_row([h, int(buckets.counts[h]), buckets.idle_pct[h]])
    print(table.render())
    print("sparkline (90-100%):",
          render_sparkline(buckets.idle_pct, lo=90.0, hi=100.0))
    crossing = first_bucket_above(buckets)
    print(f"First hour with idleness >= 99%: {crossing} (paper: 10)\n")

    # -- accounting vs ground truth --------------------------------------
    fs = forgotten_stats(trace)
    truth_forgotten = sum(
        1 for m in result.fleet.machines for s in m.session_log if s.forgotten
    )
    truth_all = sum(len(m.session_log) for m in result.fleet.machines)
    print(f"Samples on >= 10 h-old sessions: {fs.forgotten_samples} of "
          f"{fs.login_samples} login samples "
          f"({100 * fs.forgotten_fraction:.1f}%; paper: 31.6%)")
    print(f"Ground truth: {truth_forgotten} of {truth_all} sessions were "
          "genuinely abandoned by their user.\n")

    # -- threshold sweep --------------------------------------------------
    print("Threshold sweep -- how Table 2's occupied class responds:")
    sweep = Table(["threshold h", "occupied % of attempts",
                   "occupied CPU idle %", "occupied RAM %"])
    for th in (4, 8, 10, 14, 24):
        mr = compute_main_results(trace, threshold=th * 3600.0)
        sweep.add_row([th, mr.with_login.uptime_pct,
                       mr.with_login.cpu_idle_pct, mr.with_login.ram_load_pct])
    print(sweep.render())
    print("\nThe no-login column barely moves across the sweep -- the "
          "paper's 10 h choice is conservative, as claimed.")


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(days, seed)
