#!/usr/bin/env python3
"""Quickstart: monitor a classroom fleet for a week and read the results.

Runs the paper's pipeline end to end at reduced scale (7 of 77 days):
build the 169-machine fleet, let DDC probe it every 15 minutes, then
compute Table 2 and the headline availability numbers.

Usage::

    python examples/quickstart.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.analysis.availability import machines_on_series
from repro.analysis.mainresults import compute_main_results
from repro.report.tables import Table


def main(days: int = 7, seed: int = 42) -> None:
    print(f"Simulating {days} days of 169 Windows 2000 classroom machines...")
    result = run_experiment(ExperimentConfig(days=days, seed=seed))
    coord = result.coordinator

    print(f"\nDDC ran {coord.iterations_run} probing iterations "
          f"({coord.attempts} probe attempts).")
    print(f"Collected {len(result.store)} samples "
          f"-> response rate {100 * coord.response_rate:.1f}% "
          "(the paper saw 50.2% over 77 days).")

    trace = result.trace
    main_results = compute_main_results(trace)
    table = Table(["metric", "No login", "With login", "Both"])
    rows = main_results.as_dict()
    for metric, getter in [
        ("samples", lambda r: r.samples),
        ("avg uptime (%)", lambda r: r.uptime_pct),
        ("avg CPU idle (%)", lambda r: r.cpu_idle_pct),
        ("avg RAM load (%)", lambda r: r.ram_load_pct),
        ("avg SWAP load (%)", lambda r: r.swap_load_pct),
        ("avg disk used (GB)", lambda r: r.disk_used_gb),
        ("avg sent (bps)", lambda r: r.sent_bps),
        ("avg recv (bps)", lambda r: r.recv_bps),
    ]:
        table.add_row([metric, getter(rows["No login"]),
                       getter(rows["With login"]), getter(rows["Both"])])
    print("\nTable 2 -- main results:")
    print(table.render())

    series = machines_on_series(trace)
    print(f"\nOn average {series.avg_powered_on:.1f} machines were powered on "
          f"and {series.avg_user_free:.1f} were user-free (paper: 84.87 / 57.29).")
    print("\nNext steps: examples/full_paper_reproduction.py regenerates every "
          "table and figure;\nexamples/desktop_grid_harvesting.py runs the "
          "motivating application.")


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    main(days, seed)
