#!/usr/bin/env python3
"""Run the real NBench kernels on *this* machine.

The authors measured every classroom machine with an NBench probe
(section 4.1, Table 1).  This example executes the re-implemented
ten-kernel suite on the host for real, prints the per-kernel rates and
the composite INT/FP indexes, and situates your machine against the
paper's fleet (indexes are relative to the library's fixed baseline
machine, so absolute values are only comparable within this library).

Usage::

    python examples/benchmark_this_host.py [seconds_per_kernel]
"""

from __future__ import annotations

import sys

from repro.nbench.runner import run_benchmark_suite
from repro.report.tables import Table


def main(min_duration: float = 0.25) -> None:
    print(f"Timing the ten NBench kernels ({min_duration:.2f}s each)...\n")
    timings, int_idx, fp_idx = run_benchmark_suite(min_duration=min_duration)
    table = Table(["kernel", "group", "iterations", "rate (runs/s)"])
    for name, t in timings.items():
        table.add_row([name, t.group, t.iterations, t.rate])
    print(table.render())
    print(f"\nINTEGER index: {int_idx:8.2f}")
    print(f"FLOATING index: {fp_idx:8.2f}")
    print(
        "\n(Table 1's classroom machines scored 13.7-39.3 INT / 12.1-36.7 FP "
        "on the authors'\nbaseline; this library's baseline constants are "
        "its own, so compare hosts measured\nwith this tool against each "
        "other, not against Table 1 directly.)"
    )


if __name__ == "__main__":
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    main(duration)
