#!/usr/bin/env python3
"""Compare the classroom fleet against the related-work environments.

Section 2 positions the paper against Unix labs (Arpaci et al.),
corporate Windows desktops (Bolosky et al.) and servers (Heap).  This
example monitors all four environments with the identical DDC pipeline
and tabulates the metrics that differ.

Usage::

    python examples/environment_comparison.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro.baselines import compare_baselines


def main(days: int = 7, seed: int = 11) -> None:
    print(f"Monitoring five environments for {days} simulated days each...\n")
    rows, table = compare_baselines(seed=seed, days=days)
    print(table)
    print(
        "\nExpected orderings (from the literature):\n"
        "- Windows servers idle ~95%, Unix servers ~85% (Heap 2003);\n"
        "- corporate desktops busier than classrooms (Bolosky et al.: ~15% "
        "mean CPU usage);\n"
        "- Unix workstations stay powered (Arpaci et al.), classrooms get "
        "switched off --\n"
        "  which is why only the classroom sits near the 2:1 equivalence "
        "ratio (~0.5)."
    )


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    main(days, seed)
