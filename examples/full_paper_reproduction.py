#!/usr/bin/env python3
"""Full paper reproduction: 77 days, 169 machines, every table and figure.

Runs the complete experiment, prints the paper-vs-measured comparison
for Table 2 and Figs 2-6, and exports the figure series as CSV files
(for plotting with any external tool).

Usage::

    python examples/full_paper_reproduction.py [outdir] [--days N] [--seed S]
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from repro import ExperimentConfig, run_experiment
from repro.report.experiments import generate_report
from repro.report.series import series_to_csv


def export_series(report, outdir: pathlib.Path) -> list[str]:
    """Write every figure's series as CSV; returns the file names."""
    written = []

    def dump(name: str, columns) -> None:
        path = outdir / f"{name}.csv"
        path.write_text(series_to_csv(columns))
        written.append(path.name)

    buckets = report.buckets
    dump("fig2_relative_hours", {
        "hour": buckets.hours,
        "samples": buckets.counts.astype(float),
        "cpu_idle_pct": buckets.idle_pct,
    })
    av = report.availability
    dump("fig3_availability", {
        "t_seconds": av.t,
        "powered_on": av.powered_on.astype(float),
        "user_free": av.user_free.astype(float),
    })
    ur = report.ratios
    dump("fig4_uptime_ratios", {
        "rank": 1.0 + np.arange(ur.ratio.shape[0]),
        "uptime_ratio": ur.ratio,
        "nines": ur.nines,
    })
    hist = report.sessions.length_histogram()
    dump("fig4_session_lengths", {
        "bin_left_h": hist["edges_h"][:-1],
        "count": hist["counts"].astype(float),
    })
    wp = report.weekly
    dump("fig5_weekly", {
        "hour_of_week": wp.bin_hours,
        "cpu_idle_pct": wp.cpu_idle_pct,
        "ram_load_pct": wp.ram_load_pct,
        "swap_load_pct": wp.swap_load_pct,
        "sent_bps": wp.sent_bps,
        "recv_bps": wp.recv_bps,
    })
    eq = report.equivalence
    dump("fig6_equivalence", {
        "hour_of_week": eq.weekly_hours,
        "equivalence_ratio": eq.weekly_ratio,
    })
    return written


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", nargs="?", default="reproduction_output")
    parser.add_argument("--days", type=int, default=77)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    t0 = time.time()
    print(f"Running the {args.days}-day experiment (seed {args.seed})...")
    result = run_experiment(ExperimentConfig(days=args.days, seed=args.seed))
    print(f"  simulation finished in {time.time() - t0:.1f}s "
          f"({len(result.store)} samples)")

    report = generate_report(result)
    text = report.render()
    print("\n" + text)
    (outdir / "report.txt").write_text(text + "\n")

    files = export_series(report, outdir)
    print(f"\nWrote {outdir}/report.txt and figure series: {', '.join(files)}")


if __name__ == "__main__":
    main()
