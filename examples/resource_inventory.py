#!/usr/bin/env python3
"""Idle-resource inventory: what could a harvester actually take?

Quantifies the conclusions of the paper for a monitored fleet: unused
memory (network-RAM donors), free disk (distributed backup capacity),
idleness by calendar period, and the per-lab structure of it all.

Usage::

    python examples/resource_inventory.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.analysis.cpu import pairwise_cpu
from repro.analysis.idleres import (
    backup_capacity,
    disk_idleness,
    memory_idleness,
    network_ram_potential,
)
from repro.analysis.labs import per_lab_summary
from repro.analysis.periods import partition_by_period
from repro.report.tables import Table


def main(days: int = 7, seed: int = 13) -> None:
    result = run_experiment(ExperimentConfig(days=days, seed=seed))
    trace = result.trace
    pairs = pairwise_cpu(trace)

    print("== Memory ==")
    mi = memory_idleness(trace)
    print(f"Unused RAM: {mi.unused_pct_mean:.1f}% fleet-wide "
          f"({mi.fleet_unused_gb_mean:.1f} GiB available at any instant)")
    for size, pct in sorted(mi.unused_pct_by_ram.items(), reverse=True):
        print(f"  {size:4d} MB machines: {pct:.1f}% unused")
    pot = network_ram_potential(trace)
    print(f"Network-RAM donors: {pot['mean_donors']:.0f} machines offering "
          f"{pot['mean_donated_gb']:.1f} GiB on the 100 Mbps LAN")

    print("\n== Disk ==")
    di = disk_idleness(trace)
    bc = backup_capacity(trace, replication=3)
    print(f"Free disk: {di.free_gb_mean:.1f} GB/machine "
          f"({100 * di.free_fraction_mean:.0f}% of capacity), "
          f"{di.fleet_free_tb:.2f} TB fleet-wide")
    print(f"3-way replicated backup capacity: {bc['logical_tb']:.2f} TB logical")

    print("\n== When is the fleet idle? ==")
    slices = partition_by_period(trace, pairs)
    table = Table(["period", "share of samples", "CPU idle %", "machines on"])
    for name in ("open", "night", "weekend"):
        s = slices[name]
        table.add_row([name, s.sample_share, s.cpu_idle_pct, s.mean_powered_on])
    print(table.render())

    print("\n== Per-lab structure ==")
    table = Table(["lab", "machines", "uptime ratio", "occupied %",
                   "CPU idle %", "RAM %", "disk used GB"])
    for s in per_lab_summary(trace, pairs):
        table.add_row([s.lab, s.machines, s.uptime_ratio,
                       100 * s.occupied_share, s.cpu_idle_pct,
                       s.ram_load_pct, s.disk_used_gb])
    print(table.render())


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 13
    main(days, seed)
