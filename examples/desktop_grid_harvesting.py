#!/usr/bin/env python3
"""Desktop-grid harvesting: the paper's motivating application.

The conclusions argue that classroom idleness, "carefully channeled,
could yield good opportunities for grid desktop computing" -- provided
the harvester survives volatility with checkpointing, oversubscription
and replication.  This example runs a bag-of-tasks workload on a live
simulated fleet under three policies and compares the achieved cluster
equivalence with Fig 6's all-idle-cycles upper bound.

Usage::

    python examples/desktop_grid_harvesting.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.analysis.equivalence import cluster_equivalence
from repro.harvest import HarvestPolicy, validate_equivalence
from repro.report.tables import Table


def main(days: int = 7, seed: int = 7) -> None:
    cfg = ExperimentConfig(days=days, seed=seed)

    print(f"Measuring the Fig-6 upper bound over {days} days...")
    monitored = run_experiment(cfg)
    bound = cluster_equivalence(monitored.trace).ratio_total
    print(f"  all-idle-cycles cluster equivalence: {bound:.3f} "
          "(paper: 0.51 over 77 days)")

    scenarios = {
        "free machines, 30-min checkpoints": HarvestPolicy(),
        "free machines, no checkpoints (interval=inf-ish)": HarvestPolicy(
            checkpoint_interval=10 * 86400.0
        ),
        "incl. occupied machines (Ryu-style stealing)": HarvestPolicy(
            harvest_occupied=True
        ),
        "2x replication (latency robustness)": HarvestPolicy(replication=2),
    }

    table = Table(["policy", "achieved ratio", "of bound %", "tasks done",
                   "evictions", "lost to eviction h"])
    for name, policy in scenarios.items():
        print(f"Harvesting with: {name} ...")
        v = validate_equivalence(cfg, policy=policy, n_tasks=500,
                                 mean_work_hours=30.0)
        table.add_row([
            name,
            v.achieved_ratio,
            100.0 * v.achieved_ratio / bound,
            v.tasks_completed,
            v.stats.evictions,
            v.stats.lost_to_eviction / 3600.0,
        ])
    print("\n" + table.render())
    print(
        "\nReading: harvesting only user-free machines recovers roughly the\n"
        "free-machine share of the bound; stealing idle cycles under live\n"
        "sessions closes most of the remaining gap, at the cost of touching\n"
        "occupied machines. Without checkpointing nearly everything is\n"
        "destroyed by evictions -- the volatility the paper warns about --\n"
        "which is exactly why the conclusions demand survival techniques."
    )


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(days, seed)
