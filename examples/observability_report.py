#!/usr/bin/env python3
"""Observe the collector observing the fleet.

Runs a short experiment with a deliberately hostile fault plan (an
access-denied storm, a lab partition and telemetry corruption) under a
fully attached :class:`repro.obs.Observer`, then prints the
observability report: engine/fleet/collector counters, per-lab
pass-duration histograms, pipeline phase timings and -- the interesting
part -- the injected-vs-observed reconciliation, recovered purely from
the exported snapshot.

The same snapshot can be written to disk and re-summarised offline::

    python -m repro run --days 2 --obs-out obs.jsonl
    python -m repro obs obs.jsonl

Usage::

    python examples/observability_report.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.faults import AccessDeniedStorm, FaultPlan, NetworkPartition, StdoutCorruption
from repro.obs import Observer
from repro.report.faults import render_fault_report
from repro.report.obs import render_obs_report


def main(days: int = 2, seed: int = 7) -> None:
    horizon = days * 86400.0
    plan = FaultPlan(
        [
            AccessDeniedStorm(0.05),
            NetworkPartition(("L03",), start=0.3 * horizon, end=0.5 * horizon),
            StdoutCorruption(0.02, mode="garble"),
        ],
        seed=seed,
    )
    observer = Observer()
    result = run_experiment(
        ExperimentConfig(days=days, seed=seed),
        strict_postcollect=False,   # corrupted reports are dropped, not raised
        faults=plan,
        observer=observer,
    )

    snapshot = observer.snapshot()
    print(render_obs_report(snapshot))

    # The live ledger (coordinator + plan) must tell the same story the
    # snapshot just did -- print it for a side-by-side comparison.
    print()
    print(render_fault_report(result.coordinator, plan))


if __name__ == "__main__":
    main(
        days=int(sys.argv[1]) if len(sys.argv) > 1 else 2,
        seed=int(sys.argv[2]) if len(sys.argv) > 2 else 7,
    )
