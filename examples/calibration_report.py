#!/usr/bin/env python3
"""Calibration scorecard: how close is the simulator to the paper?

Runs an experiment and checks every calibrated target (Table 2 values,
Fig 2-6 headline numbers, SMART statistics) against its published value
and tolerance.  Use after changing any parameter in ``repro.config``.

Usage::

    python examples/calibration_report.py [days] [seed]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.calibration import evaluate_calibration
from repro.report.experiments import generate_report
from repro.report.tables import Table


def main(days: int = 21, seed: int = 2005) -> None:
    print(f"Running a {days}-day calibration experiment (seed {seed})...")
    result = run_experiment(ExperimentConfig(days=days, seed=seed))
    report = generate_report(result)
    results = evaluate_calibration(report)

    table = Table(["target", "paper", "measured", "rel dev %", "ok"])
    for r in results:
        table.add_row([
            r.target.name,
            r.target.paper_value,
            r.measured,
            100.0 * r.rel_deviation,
            "yes" if r.ok else "NO",
        ])
    print("\n" + table.render())
    passed = sum(r.ok for r in results)
    print(f"\n{passed}/{len(results)} targets within tolerance.")
    if passed < len(results):
        print("Misses (tune repro.config defaults or widen tolerances if the "
              "paper itself is ambiguous):")
        for r in results:
            if not r.ok:
                print(f"  - {r.target.name}: measured {r.measured:.3f} vs "
                      f"paper {r.target.paper_value:.3f}")


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 21
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2005
    main(days, seed)
