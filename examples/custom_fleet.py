#!/usr/bin/env python3
"""Monitor a *hypothetical* fleet: would the paper's findings transfer?

The library is not tied to Table 1.  This example builds a different
institution -- fewer, bigger labs with a later hardware mix -- runs the
same monitoring pipeline, and checks which of the paper's findings are
invariant to the fleet and which are artefacts of the 2005 hardware.

Machines outside the Table-1 catalog get their NBench indexes from the
frequency model (fitted on Table 1), exercising the fallback path.

Usage::

    python examples/custom_fleet.py [days] [seed]
"""

from __future__ import annotations

import math
import sys

from repro import ExperimentConfig, run_experiment
from repro.analysis.cpu import pairwise_cpu
from repro.analysis.equivalence import cluster_equivalence
from repro.analysis.mainresults import compute_main_results
from repro.machines.hardware import CPUSpec, LabSpec
from repro.nbench.model import frequency_model_indexes
from repro.report.tables import Table


def build_custom_labs() -> list[LabSpec]:
    """Six labs, 24 machines each: a later-generation institution."""
    labs = []
    mixes = [
        ("A01", CPUSpec("Intel Pentium 4", "P4", 3.0), 1024, 120.0),
        ("A02", CPUSpec("Intel Pentium 4", "P4", 3.0), 1024, 120.0),
        ("A03", CPUSpec("Intel Pentium 4", "P4", 2.8), 512, 80.0),
        ("A04", CPUSpec("Intel Pentium 4", "P4", 2.8), 512, 80.0),
        ("B01", CPUSpec("Intel Pentium III", "PIII", 1.4), 256, 40.0),
        ("B02", CPUSpec("Intel Pentium III", "PIII", 1.4), 256, 40.0),
    ]
    for name, cpu, ram, disk in mixes:
        int_idx, fp_idx = frequency_model_indexes(cpu.family, cpu.ghz)
        labs.append(
            LabSpec(name, 24, cpu, ram, disk, round(int_idx, 1), round(fp_idx, 1))
        )
    return labs


def main(days: int = 7, seed: int = 21) -> None:
    labs = build_custom_labs()
    n = sum(lab.n_machines for lab in labs)
    print(f"Monitoring a custom fleet: {len(labs)} labs, {n} machines...\n")
    table = Table(["lab", "machines", "CPU", "GHz", "RAM MB", "disk GB",
                   "INT (model)", "FP (model)"])
    for lab in labs:
        table.add_row([lab.name, lab.n_machines, lab.cpu.family, lab.cpu.ghz,
                       lab.ram_mb, lab.disk_gb, lab.nbench_int, lab.nbench_fp])
    print(table.render())

    result = run_experiment(ExperimentConfig(days=days, seed=seed), labs=labs)
    trace = result.trace
    pairs = pairwise_cpu(trace)
    mr = compute_main_results(trace, pairs=pairs)
    eq = cluster_equivalence(trace, pairs=pairs)

    print(f"\nCollected {len(trace)} samples from {trace.n_machines} machines.")
    print(f"CPU idleness: {mr.both.cpu_idle_pct:.1f}% "
          f"(free {mr.no_login.cpu_idle_pct:.1f} / "
          f"occupied {mr.with_login.cpu_idle_pct:.1f})")
    print(f"RAM load: free {mr.no_login.ram_load_pct:.1f}% / "
          f"occupied {mr.with_login.ram_load_pct:.1f}%")
    print(f"Cluster equivalence: {eq.ratio_total:.3f} "
          f"(occupied {eq.ratio_occupied:.3f} + free {eq.ratio_free:.3f})")
    print(
        "\nFinding: idleness levels and the ~2:1 equivalence are properties of\n"
        "classroom *usage*, not of the 2005 hardware -- they transfer to the\n"
        "bigger fleet nearly unchanged, while absolute capacities (free RAM,\n"
        "free disk) scale with the machines."
    )
    assert not math.isnan(eq.ratio_total)


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 21
    main(days, seed)
