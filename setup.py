"""Legacy setup shim.

The offline environment ships a setuptools without PEP-660 editable-wheel
support; this shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
