"""Section 5.2.2: SMART power-cycle analysis.

Reproduces the paper's novel SMART methodology: power cycles per machine
per day (1.07), the ~30% excess of disk power cycles over DDC-detected
machine sessions (sub-sampling-period cycles), the in-experiment uptime
per power cycle (~13.9 h) and the much lower whole-life value (~6.46 h).
"""

from __future__ import annotations

from benchmarks.conftest import show
from repro.analysis.stability import smart_power_cycle_stats
from repro.report.paperdata import PAPER
from repro.report.tables import render_comparison


def test_smart_stats_speed(benchmark, paper_trace):
    stats = benchmark(smart_power_cycle_stats, paper_trace)
    assert stats.experiment_cycles > 0


def test_smart_power_cycle_claims(benchmark, paper_report):
    benchmark(paper_report.smart.cycle_excess_over_sessions,
              len(paper_report.sessions))
    show("smart", render_comparison(paper_report.smart_rows,
                                    title="Section 5.2.2: SMART"))
    ss = paper_report.smart
    sessions = len(paper_report.sessions)
    # ~1 power cycle per machine per day
    assert abs(ss.cycles_per_day - PAPER.smart_cycles_per_day) < 0.25
    # SMART sees clearly more cycles than session detection (short cycles)
    excess = ss.cycle_excess_over_sessions(sessions)
    assert 0.10 < excess < 0.55          # paper: 0.30
    # experiment uptime/cycle ~ 14 h
    assert abs(ss.uptime_per_cycle_h_mean - PAPER.uptime_per_cycle_h) < 3.5
    # the paper's surprise: whole-life availability is much lower
    assert ss.life_uptime_per_cycle_h_mean < 0.65 * ss.uptime_per_cycle_h_mean
    assert abs(ss.life_uptime_per_cycle_h_mean - PAPER.life_uptime_per_cycle_h) < 1.5


def test_smart_counters_monotone(benchmark, paper_trace):
    benchmark(lambda: paper_trace.cycles.max())
    """Whole-life SMART counters never decrease within a machine."""
    import numpy as np

    m = paper_trace.machine_id
    same = m[1:] == m[:-1]
    assert np.all(np.diff(paper_trace.cycles)[same] >= 0)
    assert np.all(np.diff(paper_trace.poh)[same] >= -1e-9)
