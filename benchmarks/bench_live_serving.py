"""Live-serving overhead on the simulation hot path.

Times the same journaled experiment (``REPRO_LIVE_BENCH_DAYS`` days,
169 machines, unpaced) three ways:

- **journaled** -- :class:`repro.live.driver.LiveDriver` alone: the
  simulation plus write-ahead journaling, nothing tailing it (this is
  what ``repro run --recover-dir`` pays);
- **pipeline** -- driver plus the :class:`~repro.live.ingest
  .LiveIngestor` tailing the journal into rollups, no HTTP service;
- **serving** -- the full :class:`repro.live.app.LiveApp` with the
  query service up and ``REPRO_LIVE_BENCH_READERS`` concurrent clients
  polling ``/stats``, ``/labs``, ``/health`` and ``/subscribe`` every
  ``READER_PERIOD`` seconds (dashboard-style cadence, not a busy-loop
  load generator -- saturating clients measure the host's core count,
  not the server).

The measured quantity is the **driver's own wall clock** (simulation
start to seal), so each rung isolates what the next layer costs the hot
path.  The asserted budget from the PR acceptance criteria is the
**server's** overhead -- serving vs pipeline -- at **10%** (plus a
small absolute slack for scheduler jitter).  The ingest rung is
recorded alongside so the full cost picture lands in the artifact; on
multi-core hosts it is largely absorbed by a second core, while on a
single-core container it shows up as genuine time-slicing (the
reference single-core measurement is ~10%).

Environment knobs: ``REPRO_LIVE_BENCH_DAYS`` (default 4),
``REPRO_LIVE_BENCH_READERS`` (default 8), ``REPRO_LIVE_BENCH_OUT``
(default ``BENCH_live_serving.json``), ``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import gc
import os
import threading
import time
import urllib.request

from benchmarks.conftest import bench_seed, show, write_bench_report
from repro.live.app import LiveApp
from repro.live.config import LiveConfig
from repro.live.driver import LiveDriver
from repro.live.ingest import LiveIngestor
from repro.live.rollup import LiveRollups
from repro.report.tables import Table

#: Maximum tolerated serving/pipeline driver wall-clock ratio.
OVERHEAD_BUDGET = 1.10
#: Absolute slack (seconds) so short runs tolerate scheduler jitter.
NOISE_SLACK = 0.5
#: Timed repetitions per configuration (minimum taken).
ROUNDS = 2
#: Seconds between one reader's requests (dashboard polling cadence).
READER_PERIOD = 0.25


def _bench_days() -> int:
    return int(os.environ.get("REPRO_LIVE_BENCH_DAYS", "4"))


def _bench_readers() -> int:
    return int(os.environ.get("REPRO_LIVE_BENCH_READERS", "8"))


def _config(tmp_path, tag: str) -> LiveConfig:
    return LiveConfig(
        run_dir=tmp_path / tag,
        days=_bench_days(),
        seed=bench_seed(),
        rate=None,  # unpaced: measure the hot path, not the pacing sleeps
        port=0,
    )


def _driver_wall(driver: LiveDriver) -> float:
    assert driver.wall_started is not None and driver.wall_finished is not None
    return driver.wall_finished - driver.wall_started


def _journaled_run(tmp_path, rep: int):
    driver = LiveDriver(_config(tmp_path, f"journaled{rep}"))
    gc.collect()
    driver.start()
    assert driver.join(600.0) and driver.state == "terminal", driver.error
    return len(driver.store), _driver_wall(driver)


def _pipeline_run(tmp_path, rep: int):
    driver = LiveDriver(_config(tmp_path, f"pipeline{rep}"))
    rollups = LiveRollups(driver.sample_period)
    ingestor = LiveIngestor(driver.journal_dir, rollups,
                            source_done=lambda: driver.done)
    gc.collect()
    driver.start()
    ingestor.start()
    assert driver.join(600.0) and driver.state == "terminal", driver.error
    assert ingestor.join(60.0) and ingestor.drained
    return len(driver.store), _driver_wall(driver), rollups.records_ingested


def _reader(base: str, done: threading.Event, counts: dict) -> None:
    paths = ["/stats", "/labs", "/health", "/subscribe?timeout=0.2"]
    i = 0
    while not done.is_set():
        try:
            with urllib.request.urlopen(base + paths[i % len(paths)],
                                        timeout=30) as resp:
                resp.read()
                if resp.status >= 500:
                    counts["5xx"] += 1
        except OSError:
            pass
        counts["requests"] += 1
        i += 1
        done.wait(READER_PERIOD)


def _serving_run(tmp_path, rep: int):
    app = LiveApp(_config(tmp_path, f"serving{rep}"))
    gc.collect()
    app.start()
    done = threading.Event()
    counts = {"requests": 0, "5xx": 0}
    readers = [
        threading.Thread(target=_reader, args=(app.url, done, counts),
                         daemon=True)
        for _ in range(_bench_readers())
    ]
    for r in readers:
        r.start()
    assert app.wait(600.0), app.driver.state
    wall = _driver_wall(app.driver)
    done.set()
    for r in readers:
        r.join(10.0)
    assert app.driver.state == "terminal", app.driver.error
    assert counts["5xx"] == 0, f"{counts['5xx']} 5xx during bench"
    samples = len(app.driver.store)
    ingested = app.rollups.records_ingested
    app.server.stop()
    return samples, wall, counts["requests"], ingested


def test_live_serving_overhead(tmp_path):
    # warm-up so the first timed config doesn't pay import/allocator cost
    warm = LiveDriver(LiveConfig(run_dir=tmp_path / "warm", days=1,
                                 seed=bench_seed(), rate=None, port=0))
    warm.start()
    assert warm.join(120.0)

    journaled_runs = [_journaled_run(tmp_path, i) for i in range(ROUNDS)]
    n_base = journaled_runs[0][0]
    journaled = min(t for _, t in journaled_runs)

    pipeline_runs = [_pipeline_run(tmp_path, i) for i in range(ROUNDS)]
    n_pipe, _, pipe_ingested = pipeline_runs[0]
    pipeline = min(t for _, t, _ in pipeline_runs)

    serve_runs = [_serving_run(tmp_path, i) for i in range(ROUNDS)]
    n_serve, _, requests, ingested = serve_runs[0]
    serving = min(t for _, t, _, _ in serve_runs)

    # identical simulated work on every rung (same seed, same horizon)
    assert n_pipe == n_base and n_serve == n_base
    assert requests > 0 and ingested == pipe_ingested > 0

    server_overhead = (serving - pipeline) / pipeline
    table = Table(["configuration", "driver wall s", "overhead"], ndigits=2)
    table.add_row(["journaled driver alone", journaled, ""])
    table.add_row(["+ ingestor (pipeline)", pipeline,
                   f"{(pipeline - journaled) / journaled:+.1%}"])
    table.add_row([f"+ server, {_bench_readers()} readers", serving,
                   f"{server_overhead:+.1%}"])
    show("live serving overhead", table.render())

    write_bench_report("live_serving", {
        "days": _bench_days(),
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "readers": _bench_readers(),
        "reader_period_seconds": READER_PERIOD,
        "server_overhead_target": OVERHEAD_BUDGET,
        "noise_slack_seconds": NOISE_SLACK,
        "target_asserted": True,
        "runs": [
            {"configuration": "journaled",
             "driver_wall_seconds": round(journaled, 3),
             "samples": n_base},
            {"configuration": "pipeline",
             "driver_wall_seconds": round(pipeline, 3),
             "samples": n_pipe,
             "records_ingested": pipe_ingested,
             "ingest_overhead": round((pipeline - journaled) / journaled, 4)},
            {"configuration": "serving",
             "driver_wall_seconds": round(serving, 3),
             "samples": n_serve,
             "reader_requests": requests,
             "records_ingested": ingested,
             "server_overhead": round(server_overhead, 4)},
        ],
    }, env_var="REPRO_LIVE_BENCH_OUT")

    assert serving <= pipeline * OVERHEAD_BUDGET + NOISE_SLACK, (
        f"serving run {serving:.2f}s exceeds {OVERHEAD_BUDGET:.0%} of "
        f"the no-server pipeline {pipeline:.2f}s"
    )
