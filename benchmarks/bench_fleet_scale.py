"""Fleet-scale performance of the columnar probing kernel.

Sweeps the fleet size through 169 (the paper's roster), 10k and 100k
machines, timing one DDC probing pass under both kernels on identical
fleet state, and writes a JSON report (``BENCH_fleet_scale.json`` at the
repo root by default).

What is measured
----------------
The columnar refactor vectorises the *probing pass* -- the per-iteration
sweep the coordinator runs every ``sample_period`` -- while the
behavioural simulation (session churn, power management, calendar) is
shared by both kernels and already event-driven.  An end-to-end wall
clock therefore understates the kernel's effect as the fleet grows: at
10k machines the behavioural events cost ~6s/day under either kernel,
while the probing passes cost ~41s/day per-object vs ~3s/day columnar.
The headline metric is hence the **pass time**: both kernels are pointed
at the same warmed-up fleet (same seed, same state, same powered set)
and each pass variant is timed directly.  The >= 10x target from
ISSUE/ROADMAP is asserted on that ratio at 10k machines.

End-to-end day runs (build + behaviour + probing + export-ready store)
are also recorded for fleet sizes up to 10k so the report keeps the
honest whole-run numbers alongside the kernel-level ratio.

Environment knobs
-----------------
- ``REPRO_FLEET_BENCH_MACHINES``: comma list of fleet sizes
  (default ``169,10000,100000``).
- ``REPRO_FLEET_BENCH_OUT``: JSON report path (default
  ``BENCH_fleet_scale.json`` in the working directory).
- ``REPRO_BENCH_SEED``: root seed as for the rest of the harness.
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import bench_seed, show, write_bench_report
from repro.config import ExperimentConfig
from repro.ddc.coordinator import DdcCoordinator
from repro.ddc.postcollect import SamplePostCollector
from repro.ddc.w32probe import W32Probe
from repro.experiment import run_experiment
from repro.machines.hardware import scaled_labs
from repro.report.tables import Table
from repro.sim.fleet import FleetSimulator
from repro.sim.kernel import FleetColumns
from repro.traces.records import TraceMeta
from repro.traces.store import TraceStore

#: Pass-level speedup required of the columnar kernel at 10k machines.
SPEEDUP_TARGET = 10.0
#: Fleet sizes measured by default (paper roster, 10k, 100k).
DEFAULT_SWEEP = (169, 10_000, 100_000)
#: The fleet size the speedup target is asserted at.
TARGET_MACHINES = 10_000
#: Largest fleet still given a full end-to-end day run (a 100k day is
#: dominated by behavioural events and adds minutes, not information).
MAX_E2E_MACHINES = 10_000
#: Warm-up point for pass timing: noon of day one, when the powered set
#: is a realistic weekday mix rather than the all-off initial state.
WARM_SECONDS = 12 * 3600.0


def _sweep():
    raw = os.environ.get("REPRO_FLEET_BENCH_MACHINES", "")
    if not raw.strip():
        return DEFAULT_SWEEP
    return tuple(int(tok) for tok in raw.replace(" ", "").split(",") if tok)


def _build_warm_graph(n_machines):
    """Build the probing graph at ``n_machines`` and run it to noon.

    Returns ``(fleet, coordinator)`` with the coordinator *not* started:
    passes are invoked directly so both kernels can be timed against the
    exact same (frozen) fleet state.
    """
    cfg = ExperimentConfig(days=1, seed=bench_seed())
    fleet = FleetSimulator(cfg, labs=scaled_labs(n_machines))
    store = TraceStore(TraceMeta(
        n_machines=len(fleet.machines),
        sample_period=cfg.ddc.sample_period,
        horizon=cfg.horizon,
    ))
    coordinator = DdcCoordinator(
        fleet.machines,
        fleet.sim,
        cfg.ddc,
        W32Probe(),
        SamplePostCollector(store),
        fleet.streams.stream("ddc"),
        horizon=cfg.horizon,
    )
    fleet.start()
    fleet.sim.run_until(WARM_SECONDS)
    return fleet, coordinator


def _time_passes(pass_fn, start, reps):
    """Best-of-``reps`` wall time of one probing pass (seconds)."""
    best = float("inf")
    gc.collect()
    for k in range(reps):
        t0 = time.perf_counter()
        pass_fn(k, start)
        best = min(best, time.perf_counter() - t0)
    return best


def _e2e_day(n_machines):
    """Full 1-day run (auto kernel) at ``n_machines``; wall s + samples."""
    cfg = ExperimentConfig(days=1, seed=bench_seed())
    gc.collect()
    t0 = time.perf_counter()
    result = run_experiment(cfg, collect_nbench=False,
                            labs=scaled_labs(n_machines))
    return round(time.perf_counter() - t0, 3), len(result.store)


def test_fleet_scale():
    sweep = _sweep()
    rows = []
    speedup_at_target = None
    for n in sweep:
        fleet, coordinator = _build_warm_graph(n)
        now = fleet.sim.now
        # Per-object first: the object pass reads machines directly and
        # the columnar mirror snapshots state only when attached below.
        reps = 3 if n > 1000 else 10
        object_s = _time_passes(coordinator._run_pass, now, reps)
        coordinator.enable_columnar(FleetColumns(fleet.machines))
        columnar_s = _time_passes(coordinator._run_pass_columnar, now,
                                  max(reps, 10))
        speedup = object_s / columnar_s
        row = {
            "machines": n,
            "powered": int(sum(m.powered for m in fleet.machines)),
            "object_pass_seconds": round(object_s, 6),
            "columnar_pass_seconds": round(columnar_s, 6),
            "pass_speedup": round(speedup, 2),
            "columnar_machines_per_second": round(n / columnar_s),
        }
        if n <= MAX_E2E_MACHINES:
            wall, samples = _e2e_day(n)
            row["e2e_day_wall_seconds"] = wall
            row["e2e_day_samples"] = samples
        rows.append(row)
        if n == TARGET_MACHINES:
            speedup_at_target = speedup

    report = {
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "warm_seconds": WARM_SECONDS,
        "pass_speedup_target_at_10k_machines": SPEEDUP_TARGET,
        "target_asserted": TARGET_MACHINES in sweep,
        "runs": rows,
    }
    write_bench_report("fleet_scale", report,
                       env_var="REPRO_FLEET_BENCH_OUT")

    table = Table(["machines", "object pass s", "columnar pass s",
                   "speedup"], ndigits=4)
    for row in rows:
        table.add_row([row["machines"], row["object_pass_seconds"],
                       row["columnar_pass_seconds"],
                       f'{row["pass_speedup"]:.1f}x'])
    show("fleet scale", table.render())

    if speedup_at_target is not None:
        assert speedup_at_target >= SPEEDUP_TARGET, (
            f"columnar pass speedup {speedup_at_target:.1f}x at "
            f"{TARGET_MACHINES} machines is below the "
            f"{SPEEDUP_TARGET:.0f}x target"
        )
