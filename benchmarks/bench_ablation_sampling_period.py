"""Ablation: sampling-period sensitivity (DESIGN.md section 5, item 1).

The paper chose 15 minutes as "a compromise between the benefits of
gathering frequent samples and the negative impact on resources", and
section 5.2.2 quantifies the blind spot: SMART saw 30% more power cycles
than the sampling detected.  This ablation sweeps the period and
measures the session-detection deficit against SMART ground truth --
the deficit should grow with the period.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import bench_seed, show
from repro.analysis.stability import detect_machine_sessions, smart_power_cycle_stats
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.report.tables import Table

PERIODS_MIN = (5.0, 15.0, 30.0, 60.0)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for period in PERIODS_MIN:
        cfg = ExperimentConfig(days=7, seed=bench_seed())
        cfg = cfg.replace(ddc=dataclasses.replace(cfg.ddc, sample_period=period * 60.0))
        result = run_experiment(cfg)
        trace = result.trace
        sessions = detect_machine_sessions(trace)
        smart = smart_power_cycle_stats(trace)
        out[period] = {
            "sessions": len(sessions),
            "cycles": smart.experiment_cycles,
            "excess": smart.cycle_excess_over_sessions(len(sessions)),
            "samples": len(trace),
        }
    return out


def test_sampling_period_sweep(benchmark, sweep):
    benchmark(lambda: sweep[15.0]['excess'])
    table = Table(["period min", "samples", "detected sessions",
                   "SMART cycles", "cycle excess"])
    for period in PERIODS_MIN:
        row = sweep[period]
        table.add_row([period, row["samples"], row["sessions"],
                       row["cycles"], row["excess"]])
    show("ablation-period", table.render())
    # coarser sampling -> fewer samples, monotonically
    samples = [sweep[p]["samples"] for p in PERIODS_MIN]
    assert samples == sorted(samples, reverse=True)
    # coarser sampling detects fewer machine sessions...
    assert sweep[60.0]["sessions"] < sweep[5.0]["sessions"]
    # ...so its deficit against SMART grows
    assert sweep[60.0]["excess"] > sweep[5.0]["excess"]


def test_fifteen_minutes_is_the_papers_regime(benchmark, sweep):
    benchmark(lambda: sweep[15.0])
    # at the paper's period the excess sits near the published ~30%
    assert 0.10 < sweep[15.0]["excess"] < 0.55
