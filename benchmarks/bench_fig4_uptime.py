"""Fig 4: per-machine uptime ratios + nines (left); session lengths (right).

Left-plot claims: no machine above 0.9 cumulated uptime, fewer than 10
above 0.8, a descending ratio curve.  (Our simulator over-produces
machines in the 0.5-0.7 band relative to the paper's "only 30 above
0.5" -- recorded as a known divergence in EXPERIMENTS.md.)

Right-plot claims: sessions <= 96 h hold ~99% of sessions and ~88% of
cumulated uptime; mean session length ~ 15 h 55 m.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.analysis.availability import uptime_ratios
from repro.analysis.stability import detect_machine_sessions
from repro.report.paperdata import PAPER
from repro.report.series import render_sparkline
from repro.report.tables import render_comparison


def test_fig4_ratio_computation_speed(benchmark, paper_trace):
    ur = benchmark(uptime_ratios, paper_trace)
    assert ur.ratio.shape == (169,)


def test_fig4_left_uptime_ratios(benchmark, paper_report):
    benchmark(paper_report.ratios.summary)
    ur = paper_report.ratios
    spark = render_sparkline(ur.ratio, lo=0.0, hi=1.0, width=80)
    show("fig4L", f"uptime ratio curve: {spark}\n"
         + render_comparison(paper_report.fig4_rows[:3],
                             title="Fig 4 left: uptime tail"))
    s = ur.summary()
    # short windows inflate per-machine ratio tails; at paper scale
    # (>= 28 days) the claims tighten to the published ones
    from benchmarks.conftest import bench_days

    if bench_days() >= 28:
        assert s["above_0.9"] <= 2       # paper: none
        assert s["above_0.8"] < 12       # paper: < 10
    else:
        assert s["above_0.9"] <= 8
        assert s["above_0.8"] < 25
    assert 0.40 < s["mean"] < 0.60       # paper: 0.502
    # the availability curve is monotone non-increasing (it is sorted)
    assert np.all(np.diff(ur.ratio) <= 0)
    # nines stay low (paper: classroom machines are far less available
    # than corporate ones; none reached one nine over 77 days -- short
    # windows can overshoot slightly)
    limit = 1.1 if bench_days() >= 28 else 1.6
    assert np.nanmax(ur.nines[np.isfinite(ur.nines)]) < limit


def test_fig4_right_session_lengths(benchmark, paper_trace, paper_report):
    sessions = benchmark(detect_machine_sessions, paper_trace)
    hist = sessions.length_histogram()
    show("fig4R", render_comparison(paper_report.fig4_rows[3:],
                                    title="Fig 4 right: session lengths"))
    assert abs(sessions.mean_length / 3600.0 - PAPER.session_mean_h) < 4.0
    assert hist["sessions_share"][0] > 0.95
    assert 0.75 < hist["uptime_share"][0] < 0.97
    # most sessions are short: the histogram mass sits in the low bins
    counts = hist["counts"]
    assert counts[:3].sum() > counts[3:].sum() * 0.8
