"""Ablation: forgotten-login threshold sweep (DESIGN.md section 5, item 2).

Section 4.2 picks 10 hours as a "conservative approach".  Sweeping the
threshold shows how Table 2's occupied/free split responds: lower
thresholds reclassify more samples as free and pull the with-login CPU
idleness *down* (dropping mostly-idle ghost time from the class), while
the no-login column barely moves -- exactly the robustness argument the
paper's choice relies on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import show
from repro.analysis.mainresults import compute_main_results
from repro.report.tables import Table

THRESHOLDS_H = (4.0, 8.0, 10.0, 14.0, 24.0)


@pytest.fixture(scope="module")
def sweep(paper_trace):
    return {
        th: compute_main_results(paper_trace, threshold=th * 3600.0)
        for th in THRESHOLDS_H
    }


def test_threshold_sweep_table(benchmark, sweep, paper_trace):
    from repro.analysis.mainresults import compute_main_results
    benchmark.pedantic(compute_main_results, args=(paper_trace,),
                       kwargs={'threshold': 10 * 3600.0}, rounds=1, iterations=1)
    table = Table(["threshold h", "occupied %att", "idle% occupied",
                   "idle% free", "RAM% occupied"])
    for th in THRESHOLDS_H:
        mr = sweep[th]
        table.add_row([th, mr.with_login.uptime_pct, mr.with_login.cpu_idle_pct,
                       mr.no_login.cpu_idle_pct, mr.with_login.ram_load_pct])
    show("ablation-threshold", table.render())
    # occupied share grows monotonically with the threshold
    occ = [sweep[th].with_login.uptime_pct for th in THRESHOLDS_H]
    assert occ == sorted(occ)
    # a looser threshold keeps more ghost (idle) time in the occupied
    # class, raising its measured idleness
    assert sweep[24.0].with_login.cpu_idle_pct > sweep[4.0].with_login.cpu_idle_pct


def test_no_login_column_is_robust(benchmark, sweep):
    benchmark(lambda: [sweep[t].no_login.cpu_idle_pct for t in THRESHOLDS_H])
    idles = [sweep[th].no_login.cpu_idle_pct for th in THRESHOLDS_H]
    assert max(idles) - min(idles) < 0.35


def test_total_column_invariant(benchmark, sweep):
    benchmark(lambda: [sweep[t].both.cpu_idle_pct for t in THRESHOLDS_H])
    """The 'Both' column never depends on the threshold."""
    both = [sweep[th].both.cpu_idle_pct for th in THRESHOLDS_H]
    assert max(both) - min(both) < 1e-9
