"""Phase-2 behavioural engine: vectorised event loop at fleet scale.

PR 6's columnar kernel vectorised the probing pass; at 10k machines the
*behavioural* event loop (session churn, power management, workload
redraws) became the dominant cost of a simulated day.  Phase 2 moves
those dynamics onto per-tick columnar draws when
``behavioural_equivalence="statistical"`` engages the vectorised engine
above the fleet-size threshold.

Two measurements, one JSON artifact (``BENCH_behavioural.json``):

1. **Behavioural phase** -- a fleet-only day (no coordinator, no
   probing): the object agents versus the vector engine on the same
   roster and seed.  Target: **>= 4x** at 10k machines.
2. **End to end** -- a full 1-day run: the exact path (columnar probing
   + object behaviour, the previous state of the art and the
   ``BENCH_fleet_scale.json`` baseline) versus
   ``kernel="columnar", behavioural_equivalence="statistical"``.
   Target: **>= 2x** at 10k machines.

The artifact also records the committed ``BENCH_fleet_scale.json``
baseline's ``e2e_day_wall_seconds`` when that file is readable, so the
cross-host ratio stays inspectable alongside the same-host one that is
asserted.

Environment knobs: ``REPRO_BEHAVIOURAL_BENCH_MACHINES`` (default
``10000``), ``REPRO_BEHAVIOURAL_BENCH_OUT`` for the report path, and
``REPRO_BENCH_SEED`` as for the rest of the harness.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

from benchmarks.conftest import bench_seed, show, write_bench_report
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.machines.hardware import scaled_labs
from repro.report.tables import Table
from repro.sim.fleet import FleetSimulator

#: Same-host end-to-end speedup required of the statistical engine.
E2E_SPEEDUP_TARGET = 2.0
#: Same-host behavioural-phase (fleet-only) speedup required.
BEHAVIOURAL_SPEEDUP_TARGET = 4.0
#: The fleet size both targets are asserted at.
TARGET_MACHINES = 10_000


def _machines() -> int:
    return int(os.environ.get("REPRO_BEHAVIOURAL_BENCH_MACHINES", "10000"))


def _statistical(cfg: ExperimentConfig) -> ExperimentConfig:
    return cfg.replace(kernel="columnar",
                       behavioural_equivalence="statistical")


def _fleet_only_day(cfg: ExperimentConfig, labs) -> tuple[float, str]:
    """Wall seconds of one behavioural-only day (no probing passes)."""
    fleet = FleetSimulator(cfg, labs=labs)
    gc.collect()
    t0 = time.perf_counter()
    fleet.start()
    fleet.sim.run_until(cfg.horizon)
    return time.perf_counter() - t0, fleet.behavioural_backend


def _e2e_day(cfg: ExperimentConfig, labs) -> tuple[float, int]:
    gc.collect()
    t0 = time.perf_counter()
    result = run_experiment(cfg, collect_nbench=False, labs=labs)
    return time.perf_counter() - t0, len(result.store)


def _fleet_scale_baseline() -> float | None:
    """``e2e_day_wall_seconds`` at 10k from the committed artifact."""
    path = pathlib.Path(__file__).resolve().parents[1] \
        / "BENCH_fleet_scale.json"
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    for row in data.get("runs", ()):
        if row.get("machines") == TARGET_MACHINES:
            return row.get("e2e_day_wall_seconds")
    return None


def test_behavioural_engine_speedup():
    n = _machines()
    labs = scaled_labs(n)
    exact = ExperimentConfig(days=1, seed=bench_seed())
    stat = _statistical(exact)

    obj_fleet_s, obj_backend = _fleet_only_day(exact, labs)
    vec_fleet_s, vec_backend = _fleet_only_day(stat, labs)
    assert obj_backend == "object"
    assert vec_backend == "vector", (
        f"statistical mode did not engage the vector engine at {n} "
        f"machines (backend {vec_backend!r})"
    )
    behavioural_speedup = obj_fleet_s / vec_fleet_s

    exact_e2e_s, exact_samples = _e2e_day(exact, labs)
    stat_e2e_s, stat_samples = _e2e_day(stat, labs)
    e2e_speedup = exact_e2e_s / stat_e2e_s

    asserted = n >= TARGET_MACHINES
    rows = [
        {"mode": "exact", "phase": "behavioural",
         "wall_seconds": round(obj_fleet_s, 3)},
        {"mode": "statistical", "phase": "behavioural",
         "wall_seconds": round(vec_fleet_s, 3),
         "speedup": round(behavioural_speedup, 2)},
        {"mode": "exact", "phase": "e2e_day",
         "wall_seconds": round(exact_e2e_s, 3), "samples": exact_samples},
        {"mode": "statistical", "phase": "e2e_day",
         "wall_seconds": round(stat_e2e_s, 3), "samples": stat_samples,
         "speedup": round(e2e_speedup, 2)},
    ]
    report = {
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "machines": n,
        "behavioural_speedup_target": BEHAVIOURAL_SPEEDUP_TARGET,
        "e2e_speedup_target": E2E_SPEEDUP_TARGET,
        "fleet_scale_baseline_e2e_seconds": _fleet_scale_baseline(),
        "target_asserted": asserted,
        "runs": rows,
    }
    write_bench_report("behavioural", report,
                       env_var="REPRO_BEHAVIOURAL_BENCH_OUT")

    table = Table(["phase", "exact s", "statistical s", "speedup"],
                  ndigits=3)
    table.add_row(["behavioural", obj_fleet_s, vec_fleet_s,
                   f"{behavioural_speedup:.1f}x"])
    table.add_row(["e2e day", exact_e2e_s, stat_e2e_s,
                   f"{e2e_speedup:.1f}x"])
    show("behavioural engine", table.render())

    if asserted:
        assert behavioural_speedup >= BEHAVIOURAL_SPEEDUP_TARGET, (
            f"behavioural phase speedup {behavioural_speedup:.1f}x at "
            f"{n} machines is below the "
            f"{BEHAVIOURAL_SPEEDUP_TARGET:.0f}x target"
        )
        assert e2e_speedup >= E2E_SPEEDUP_TARGET, (
            f"end-to-end speedup {e2e_speedup:.1f}x at {n} machines is "
            f"below the {E2E_SPEEDUP_TARGET:.0f}x target"
        )
