"""Table 2: main results of the monitoring experiment (+ headline scale).

Checks the *shape* the paper reports: who is idler, by roughly what
factor, with the forgotten-session reclassification applied.  Absolute
values come from the calibrated simulator and land within ~10% of the
published numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from benchmarks.conftest import show
from repro.analysis.mainresults import compute_main_results
from repro.report.paperdata import PAPER
from repro.report.tables import render_comparison


def test_experiment_scale(benchmark, paper_report):
    benchmark(lambda: paper_report.scale_rows)
    show("scale", render_comparison(paper_report.scale_rows,
                                    title="Experiment scale (section 5)"))
    measured_resp = dict((r[0], r[2]) for r in paper_report.scale_rows)[
        "response rate %"
    ]
    assert abs(measured_resp - 100 * PAPER.response_rate) < 6.0


def test_table2_analysis_speed(benchmark, paper_trace, paper_pairs):
    """Times the full Table-2 aggregation over ~600k samples."""
    result = benchmark(compute_main_results, paper_trace, pairs=paper_pairs)
    assert result.both.samples == len(paper_trace)


def test_table2_values(benchmark, paper_report):
    benchmark(lambda: paper_report.main.as_dict())
    show("table2", render_comparison(paper_report.table2_rows,
                                     title="Table 2: main results"))
    m = paper_report.main
    # CPU idleness: the paper's central result, tight tolerance
    assert abs(m.both.cpu_idle_pct - PAPER.t2_cpu_idle_pct["both"]) < 1.0
    assert abs(m.no_login.cpu_idle_pct - PAPER.t2_cpu_idle_pct["no_login"]) < 0.8
    assert abs(m.with_login.cpu_idle_pct - PAPER.t2_cpu_idle_pct["with_login"]) < 1.5
    # orderings
    assert m.no_login.cpu_idle_pct > m.with_login.cpu_idle_pct
    assert m.with_login.ram_load_pct > m.no_login.ram_load_pct
    assert m.with_login.swap_load_pct > m.no_login.swap_load_pct
    # memory within a few points
    assert abs(m.no_login.ram_load_pct - PAPER.t2_ram_load_pct["no_login"]) < 4.0
    assert abs(m.with_login.ram_load_pct - PAPER.t2_ram_load_pct["with_login"]) < 5.0
    # disk usage independent of login state
    assert abs(m.no_login.disk_used_gb - m.with_login.disk_used_gb) < 1.5
    # network: occupied ~10x idle; recv ~3-4x sent when occupied
    assert 5 < m.with_login.sent_bps / m.no_login.sent_bps < 25
    assert 5 < m.with_login.recv_bps / m.no_login.recv_bps < 40
    assert 2 < m.with_login.recv_bps / m.with_login.sent_bps < 6
