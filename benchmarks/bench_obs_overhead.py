"""Observability overhead at paper scale.

Times the same paper-scale experiment (``REPRO_BENCH_DAYS`` days, 169
machines) three ways:

- **baseline** -- no observer argument at all (pre-PR behaviour),
- **null** -- an attached :class:`repro.obs.NullObserver`, which every
  layer drops at construction, so this must price at the baseline,
- **instrumented** -- a fully attached :class:`repro.obs.Observer`:
  engine event records, per-lab collector counters, latency/duration
  histograms, iteration spans and phase gauges all live.

Overhead budget
---------------
The fully instrumented run must stay within **10%** of the baseline
wall clock (the bound stated in docs/observability.md and enforced
below).  The budget holds because instrumented layers pre-bind their
instruments and pay one ``is not None`` check plus an attribute bump per
event; the registry dictionary is never consulted on the hot path.  The
NullObserver run is additionally required to stay within timer noise of
the baseline, since its hooks do not exist at all after construction.

``REPRO_BENCH_DAYS=14`` gives a quick but noisier check; the assertion
adds a small absolute slack so short runs don't fail on scheduler
jitter.  Reference measurement at full paper scale (77 days, 169
machines, unloaded host): baseline 35.1s, NullObserver 34.5s (noise),
fully instrumented 37.1s (**+5.6%**).
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import bench_days, bench_seed, show, write_bench_report
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.obs import NullObserver, Observer
from repro.report.tables import Table

#: Maximum tolerated instrumented/baseline wall-clock ratio.
OVERHEAD_BUDGET = 1.10
#: Absolute slack (seconds) so short runs tolerate scheduler jitter.
NOISE_SLACK = 0.5
#: Timed repetitions per configuration (minimum taken -- noise is
#: strictly additive, so the fastest repetition is the best estimate).
ROUNDS = 2


def _timed_run(observer_factory):
    """One timed run; returns ``(n_samples, events_fired, wall_seconds)``.

    The result object is dropped *inside* this function and the heap is
    collected before timing starts, so no configuration pays for the
    garbage of the previous one.
    """
    cfg = ExperimentConfig(days=bench_days(), seed=bench_seed())
    observer = observer_factory()
    gc.collect()
    t0 = time.perf_counter()
    result = run_experiment(cfg, collect_nbench=False, observer=observer)
    elapsed = time.perf_counter() - t0
    fired = (result.observer.snapshot().counter_total("sim.events_fired")
             if result.observer is not None else None)
    return len(result.store), fired, elapsed


def _best_of(observer_factory, rounds=ROUNDS):
    runs = [_timed_run(observer_factory) for _ in range(rounds)]
    n_samples, fired, _ = runs[0]
    return n_samples, fired, min(t for _, _, t in runs)


def test_obs_overhead_within_budget():
    # warm up imports/allocators so the first timed config isn't penalised
    run_experiment(ExperimentConfig(days=1, seed=bench_seed()),
                   collect_nbench=False)

    n_base, _, base = _best_of(lambda: None)
    n_null, _, null = _best_of(NullObserver)
    n_inst, fired, inst = _best_of(Observer)

    # identical work was done (same seed, same trace volume)
    assert n_null == n_base and n_inst == n_base
    assert fired is not None and fired > 0

    table = Table(["configuration", "wall s", "overhead"], ndigits=2)
    for name, seconds in (("baseline (no observer)", base),
                          ("NullObserver attached", null),
                          ("fully instrumented", inst)):
        table.add_row([name, seconds, f"{(seconds - base) / base:+.1%}"])
    show("observability overhead", table.render())

    write_bench_report("obs_overhead", {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "overhead_target": OVERHEAD_BUDGET,
        "noise_slack_seconds": NOISE_SLACK,
        "target_asserted": True,
        "runs": [
            {"configuration": "baseline", "wall_seconds": round(base, 3),
             "samples": n_base},
            {"configuration": "null_observer", "wall_seconds": round(null, 3),
             "samples": n_null,
             "overhead": round((null - base) / base, 4)},
            {"configuration": "instrumented", "wall_seconds": round(inst, 3),
             "samples": n_inst, "events_fired": fired,
             "overhead": round((inst - base) / base, 4)},
        ],
    }, env_var="REPRO_OBS_BENCH_OUT")

    assert inst <= base * OVERHEAD_BUDGET + NOISE_SLACK, (
        f"instrumented run {inst:.2f}s exceeds {OVERHEAD_BUDGET:.0%} of "
        f"baseline {base:.2f}s"
    )
    assert null <= base * 1.02 + NOISE_SLACK, (
        f"NullObserver run {null:.2f}s is not at baseline {base:.2f}s"
    )
