"""Harvesting validation: the 2:1 rule under a real guest workload.

Fig 6's 0.51 ratio is an upper bound ("this methodology assumes that all
idle CPU can be harvested").  The harvesting simulator pays the real
costs -- free-machines-only placement, evictions, checkpoints -- and the
bench quantifies each discount, plus the survival-technique ablations
the conclusions call for (checkpoint interval, replication).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_seed, show
from repro.config import ExperimentConfig
from repro.harvest.scheduler import HarvestPolicy
from repro.harvest.validation import validate_equivalence
from repro.report.tables import Table

DAYS = 7


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(days=DAYS, seed=bench_seed())


@pytest.fixture(scope="module")
def free_only(cfg):
    return validate_equivalence(cfg, n_tasks=600, mean_work_hours=30.0)


@pytest.fixture(scope="module")
def with_occupied(cfg):
    return validate_equivalence(
        cfg,
        policy=HarvestPolicy(harvest_occupied=True),
        n_tasks=600,
        mean_work_hours=30.0,
    )


def test_harvest_vs_upper_bound(benchmark, free_only, with_occupied, cfg):
    benchmark(lambda: free_only.achieved_ratio)
    from repro.analysis.equivalence import cluster_equivalence
    from repro.experiment import run_experiment

    monitored = run_experiment(cfg)
    bound = cluster_equivalence(monitored.trace).ratio_total
    table = Table(["scenario", "equivalence ratio"])
    table.add_row(["Fig 6 upper bound (all idle cycles)", bound])
    table.add_row(["harvest free machines only", free_only.achieved_ratio])
    table.add_row(["harvest incl. occupied (Ryu-style)", with_occupied.achieved_ratio])
    show("harvest", table.render())
    # ordering: bound > occupied-harvesting > free-only > 0
    assert bound > with_occupied.achieved_ratio > free_only.achieved_ratio > 0.1
    # occupied-harvesting approaches the bound within ~25%
    assert with_occupied.achieved_ratio > 0.7 * bound


def test_eviction_losses_are_bounded(benchmark, free_only):
    benchmark(lambda: free_only.eviction_loss_fraction)
    assert free_only.eviction_loss_fraction < 0.15
    assert free_only.stats.evictions > 0  # volatility is real


def test_checkpoint_interval_tradeoff(benchmark, cfg):
    benchmark(lambda: None)  # sweep below is the expensive part
    """Frequent checkpoints pay overhead, rare ones lose work to eviction."""
    outcomes = {}
    for interval in (300.0, 1800.0, 7200.0):
        v = validate_equivalence(
            cfg,
            policy=HarvestPolicy(checkpoint_interval=interval,
                                 checkpoint_cost=30.0),
            n_tasks=400,
            mean_work_hours=30.0,
        )
        outcomes[interval] = v
    table = Table(["checkpoint interval s", "achieved ratio",
                   "lost to checkpoints", "lost to eviction"])
    for k, v in outcomes.items():
        table.add_row([k, v.achieved_ratio, v.stats.lost_to_checkpoints,
                       v.stats.lost_to_eviction])
    show("harvest-ckpt", table.render())
    # checkpoint overhead decreases with the interval
    costs = [outcomes[k].stats.lost_to_checkpoints for k in (300.0, 1800.0, 7200.0)]
    assert costs == sorted(costs, reverse=True)
    # eviction losses increase with the interval
    ev = [outcomes[k].stats.lost_to_eviction for k in (300.0, 1800.0, 7200.0)]
    assert ev[0] < ev[-1]


def test_replication_trades_throughput_for_latency(benchmark, cfg):
    benchmark(lambda: None)
    single = validate_equivalence(cfg, n_tasks=250, mean_work_hours=20.0)
    double = validate_equivalence(
        cfg, policy=HarvestPolicy(replication=2), n_tasks=250,
        mean_work_hours=20.0,
    )
    table = Table(["replication", "tasks completed", "wasted replica work h"])
    table.add_row([1, single.tasks_completed, single.stats.wasted_replica_work / 3600])
    table.add_row([2, double.tasks_completed, double.stats.wasted_replica_work / 3600])
    show("harvest-repl", table.render())
    # replication wastes work; with an over-provisioned batch that costs
    # throughput (fewer distinct tasks finish)
    assert double.stats.wasted_replica_work > single.stats.wasted_replica_work
    assert double.tasks_completed <= single.tasks_completed
