"""Section-6 conclusions, quantified.

The paper's conclusions make claims beyond the figures: memory idleness
"especially in machines fitted with 512 MB", impressive free disk for
"distributed backups or local data grids", limited absolute idleness
outside nights/weekends yet high idleness during working hours, and the
need for survival techniques.  This bench measures each claim with the
extension analyses.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import show
from repro.analysis.idleres import (
    backup_capacity,
    disk_idleness,
    memory_idleness,
    network_ram_potential,
)
from repro.analysis.periods import partition_by_period
from repro.harvest.replay import replay_harvest
from repro.report.tables import Table


def test_memory_idleness_claim(benchmark, paper_trace):
    mi = benchmark(memory_idleness, paper_trace)
    table = Table(["RAM size MB", "unused %"])
    for size, pct in sorted(mi.unused_pct_by_ram.items()):
        table.add_row([size, pct])
    show("conclusions-memory", table.render()
         + f"\nfleet mean unused: {mi.unused_pct_mean:.1f}% "
         f"({mi.fleet_unused_gb_mean:.1f} GiB at any instant)")
    # Table 2 both-class RAM load 58.9% -> 41.1% unused
    assert mi.unused_pct_mean == pytest.approx(41.1, abs=4.0)
    # the 512 MB machines are the attractive donors
    assert mi.unused_pct_by_ram[512] > mi.unused_pct_by_ram[256]
    assert mi.unused_pct_by_ram[256] > mi.unused_pct_by_ram[128]


def test_network_ram_claim(benchmark, paper_trace):
    pot = benchmark(network_ram_potential, paper_trace)
    show("conclusions-netram",
         f"mean donors: {pot['mean_donors']:.1f} machines, "
         f"donated: {pot['mean_donated_gb']:.1f} GiB")
    # dozens of donors offering gigabytes over the 100 Mbps LAN
    assert pot["mean_donors"] > 30
    assert pot["mean_donated_gb"] > 8.0


def test_free_disk_claim(benchmark, paper_trace):
    di = benchmark(disk_idleness, paper_trace)
    bc = backup_capacity(paper_trace, replication=3)
    show("conclusions-disk",
         f"free per machine: {di.free_gb_mean:.1f} GB "
         f"({100 * di.free_fraction_mean:.0f}%), fleet {di.fleet_free_tb:.2f} TB;"
         f" 3-way-replicated backup capacity: {bc['logical_tb']:.2f} TB")
    # "unused disk space of the order of gigabytes per machine"
    assert di.free_gb_mean > 15.0
    # fleet: several TB free out of 6.66 TB installed
    assert 2.5 < di.fleet_free_tb < 6.5
    assert bc["logical_tb"] > 0.8


def test_night_weekend_partition(benchmark, paper_trace, paper_pairs):
    slices = benchmark(partition_by_period, paper_trace, paper_pairs)
    table = Table(["period", "sample share", "CPU idle %", "mean machines on"])
    for name in ("open", "night", "weekend"):
        s = slices[name]
        table.add_row([name, s.sample_share, s.cpu_idle_pct, s.mean_powered_on])
    show("conclusions-periods", table.render())
    # absolute idleness (closed classrooms) is the minority of the time...
    assert slices["open"].sample_share > 0.6
    # ...but working-hours idleness is still very high
    assert slices["open"].cpu_idle_pct > 96.0
    assert slices["night"].cpu_idle_pct > 99.0
    assert slices["weekend"].cpu_idle_pct > 99.0


def test_offline_replay_matches_fig6_discount(benchmark, paper_trace, paper_pairs):
    replay = benchmark(replay_harvest, paper_trace, pairs=paper_pairs)
    show("conclusions-replay",
         f"offline replay: achieved {replay.achieved_ratio:.3f}, "
         f"{replay.evictions} evictions, "
         f"{replay.eviction_losses / 3600:.0f} h volatile work lost")
    # free-machine harvesting recovers roughly the user-free share of
    # Fig 6's bound (~0.25 of 0.51)
    assert 0.15 < replay.achieved_ratio < 0.40
