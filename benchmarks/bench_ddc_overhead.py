"""DDC architecture (Fig 1) and its overhead claims.

Section 3: "the remote execution mechanism requires minimal resources"
and "W32Probe requires practically no CPU".  This bench measures the
simulated iteration cost (sequential pass over 169 machines) and the
host-side cost of the probe + post-collect pipeline, plus the
sequential-probing scaling ablation from DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import show
from repro.config import DdcParams
from repro.ddc.postcollect import PostCollectContext, SamplePostCollector
from repro.ddc.w32probe import W32Probe
from repro.machines.hardware import build_fleet
from repro.machines.machine import SimMachine
from repro.machines.smart import SmartDisk
from repro.machines.winapi import Win32Api
from repro.report.tables import Table
from repro.traces.store import TraceStore


@pytest.fixture(scope="module")
def booted_machine():
    spec = build_fleet()[0]
    m = SimMachine(spec, SmartDisk(spec.disk_serial, spec.disk_bytes),
                   base_disk_used_bytes=int(12e9))
    m.boot(0.0)
    m.set_memory_load(0.0, 55.0, 26.0)
    m.set_net_rates(0.0, 200.0, 700.0)
    return m


def test_probe_execution_cost(benchmark, booted_machine):
    """One W32Probe execution (the hot inner loop of every iteration)."""
    api = Win32Api(booted_machine)
    probe = W32Probe()
    result = benchmark(probe.run, api, 1000.0)
    assert result.ok
    # the probe itself reports a negligible remote CPU cost
    assert result.cpu_seconds < 0.1


def test_probe_plus_postcollect_cost(benchmark, booted_machine):
    """Probe + parse + store: the full per-sample pipeline."""
    probe = W32Probe()
    api = Win32Api(booted_machine)
    store = TraceStore()
    collector = SamplePostCollector(store)
    ctx = PostCollectContext(machine_id=0, hostname="L01-M01", lab="L01",
                             t=1000.0, iteration=0)

    def pipeline():
        result = probe.run(api, 1000.0)
        return collector(result.stdout, result.stderr, ctx)

    sample = benchmark(pipeline)
    assert sample is not None


def test_sequential_probing_scales_linearly(benchmark):
    benchmark(lambda: None)  # the measurement below is simulated time
    """Iteration duration grows ~linearly with fleet size (the reason a
    15-minute period comfortably fits 169 machines but would not fit
    thousands with a sequential pass)."""
    from repro.ddc.coordinator import DdcCoordinator
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams

    durations = {}
    for n in (25, 50, 100, 169):
        machines = []
        for spec in build_fleet()[:n]:
            m = SimMachine(spec, SmartDisk(spec.disk_serial, spec.disk_bytes))
            m.boot(0.0)
            machines.append(m)
        sim = Simulator()
        store = TraceStore()
        coord = DdcCoordinator(
            machines, sim, DdcParams(), W32Probe(),
            SamplePostCollector(store),
            RandomStreams(1).stream("ddc"), horizon=901.0,
        )
        coord.start()
        sim.run_until(901.0)
        durations[n] = coord.iteration_durations[0]
    table = Table(["machines", "iteration seconds (simulated)"])
    for n, d in durations.items():
        table.add_row([n, d])
    show("ddc-scaling", table.render())
    # linear within 25%
    ratio = durations[169] / durations[25]
    assert 169 / 25 * 0.75 < ratio < 169 / 25 * 1.25
    # an iteration over the full fleet fits well inside the 15-min period
    assert durations[169] < 300.0
