"""Related-work baseline comparison (section 2 positioning).

Runs the classroom fleet next to the corporate (Bolosky), server (Heap)
and Unix-lab (Arpaci) environments through the identical DDC + analysis
pipeline and checks the orderings the literature reports.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_seed, show
from repro.baselines.comparison import compare_baselines
from repro.report.paperdata import PAPER


@pytest.fixture(scope="module")
def comparison():
    rows, table = compare_baselines(seed=bench_seed(), days=7)
    return {r.name: r for r in rows}, table


def test_environment_comparison_table(benchmark, comparison):
    benchmark(lambda: comparison[0])
    rows, table = comparison
    show("baselines", table)
    assert len(rows) == 5


def test_heap_server_ordering(benchmark, comparison):
    benchmark(lambda: comparison[0]['windows servers (Heap)'])
    rows, _ = comparison
    win = rows["windows servers (Heap)"]
    unix = rows["unix servers (Heap)"]
    assert win.cpu_idle_pct > unix.cpu_idle_pct
    assert abs(win.cpu_idle_pct - PAPER.heap_windows_server_idle_pct) < 3.0
    assert abs(unix.cpu_idle_pct - PAPER.heap_unix_server_idle_pct) < 5.0


def test_corporate_busier_than_classroom(benchmark, comparison):
    benchmark(lambda: comparison[0]['corporate (Bolosky)'])
    rows, _ = comparison
    assert (
        rows["corporate (Bolosky)"].cpu_idle_pct
        < rows["classroom (paper)"].cpu_idle_pct
    )


def test_availability_ordering(benchmark, comparison):
    benchmark(lambda: comparison[0]['unix lab (Arpaci)'])
    rows, _ = comparison
    assert rows["windows servers (Heap)"].uptime_pct > 99.0
    assert (
        rows["unix lab (Arpaci)"].uptime_pct
        > rows["classroom (paper)"].uptime_pct
    )


def test_classroom_equivalence_is_the_two_to_one_outlier(benchmark, comparison):
    benchmark(lambda: comparison[0]['classroom (paper)'])
    rows, _ = comparison
    classroom = rows["classroom (paper)"].equivalence_ratio
    assert 0.4 < classroom < 0.62
    # always-on fleets convert nearly all idleness; the classroom's power
    # volatility halves its usable capacity
    assert rows["unix lab (Arpaci)"].equivalence_ratio > classroom + 0.1
