"""Fig 3: machines powered on and user-free over the experiment.

Shape checks: the averages (84.87 / 57.29 machines), the ~70% of
powered-on machines being user-free, the weekday high-frequency
variation, and the weekend (especially Sunday) slowdowns.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.analysis.availability import machines_on_series
from repro.report.paperdata import PAPER
from repro.report.series import render_sparkline
from repro.report.tables import render_comparison
from repro.sim.calendar import DAY


def test_fig3_series_speed(benchmark, paper_trace):
    series = benchmark(machines_on_series, paper_trace)
    assert series.powered_on.size > 0


def test_fig3_averages(benchmark, paper_report):
    benchmark(lambda: (paper_report.availability.avg_powered_on,
                       paper_report.availability.avg_user_free))
    series = paper_report.availability
    spark_on = render_sparkline(series.powered_on.astype(float), width=77)
    spark_free = render_sparkline(series.user_free.astype(float), width=77)
    show("fig3", f"powered on: {spark_on}\nuser-free : {spark_free}\n"
         + render_comparison(paper_report.fig3_rows, title="Fig 3: availability"))
    assert abs(series.avg_powered_on - PAPER.fig3_avg_powered_on) < 8.0
    assert abs(series.avg_user_free - PAPER.fig3_avg_user_free) < 7.0
    # "roughly, on average, 70% of the powered on machines are free"
    free_share = series.avg_user_free / series.avg_powered_on
    assert 0.55 < free_share < 0.8


def test_fig3_weekly_pattern(benchmark, paper_report):
    benchmark(lambda: paper_report.availability.powered_on.std())
    series = paper_report.availability
    day_idx = (series.t // DAY).astype(int) % 7
    sundays = series.powered_on[day_idx == 6]
    tuesdays = series.powered_on[day_idx == 1]
    assert tuesdays.mean() > 1.4 * sundays.mean()
    # weekday counts fluctuate widely (high-frequency variation)
    weekday = series.powered_on[day_idx < 5]
    assert weekday.std() > 10.0
