"""Cost of the supervised shard control plane, and what resume buys.

Two questions, one JSON artifact (``BENCH_shard_recovery.json``):

1. **Supervision overhead** -- the supervisor adds heartbeat events, a
   parent-side event loop and manifest bookkeeping on top of the plain
   ``ProcessPoolExecutor`` fan-out.  Target from
   docs/shard_recovery.md: **<= 5%** wall-clock overhead at 2 shards,
   asserted only on hosts with >= 4 CPUs (on smaller hosts the
   supervisor's polling thread time-slices the workers' cores and the
   comparison measures the scheduler, not the control plane).
2. **Resume speedup** -- after a worker dies mid-campaign with an
   exhausted restart budget, ``resume_from=`` continues every shard
   from its own checkpoints instead of recomputing the whole campaign.
   The resumed portion must beat restarting from zero (target >= 1.1x,
   same CPU gate); the merged bytes are asserted identical either way.

Environment knobs: ``REPRO_BENCH_DAYS`` / ``REPRO_BENCH_SEED`` as for
the rest of the harness, ``REPRO_SHARD_RECOVERY_BENCH_OUT`` for the
report path.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from benchmarks.conftest import (
    bench_days,
    bench_seed,
    show,
    write_bench_report,
)
from repro.config import paper_config
from repro.errors import ShardWorkerError
from repro.experiment import run_experiment
from repro.recovery.crashtest import CrashSpec
from repro.recovery.runtime import RecoveryConfig
from repro.recovery.smoke import derive_kill_iteration
from repro.report.tables import Table
from repro.shard.supervisor import SupervisorPolicy

#: Campaign width measured (matches the chaos suite's primary case).
SHARDS = 2
#: Supervision wall-clock overhead budget versus the plain pool.
OVERHEAD_TARGET_PCT = 5.0
#: Resuming a killed campaign must beat recomputing it from zero.
RESUME_SPEEDUP_TARGET = 1.1


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _csv(result, path):
    result.store.write_csv(path)
    return path.read_bytes()


def test_shard_recovery_costs(tmp_path):
    cpus = os.cpu_count() or 1
    cfg = paper_config(seed=bench_seed(), days=bench_days())
    rows = []

    pool, pool_s = _timed(
        lambda: run_experiment(cfg, collect_nbench=False, shards=SHARDS))
    baseline_csv = _csv(pool, tmp_path / "pool.csv")
    rows.append({"mode": "pool", "wall_seconds": round(pool_s, 3),
                 "samples": len(pool.store)})

    supervised, sup_s = _timed(
        lambda: run_experiment(cfg, collect_nbench=False, shards=SHARDS,
                               supervise=True))
    assert _csv(supervised, tmp_path / "sup.csv") == baseline_csv
    overhead_pct = 100.0 * (sup_s / pool_s - 1.0)
    rows.append({"mode": "supervised", "wall_seconds": round(sup_s, 3),
                 "samples": len(supervised.store),
                 "overhead_pct": round(overhead_pct, 2)})

    # Fresh journaled campaign: the restart-from-zero cost of a crash.
    fresh_dir = tmp_path / "fresh"
    fresh, fresh_s = _timed(
        lambda: run_experiment(
            cfg, collect_nbench=False, shards=SHARDS, supervise=True,
            recovery=RecoveryConfig(run_dir=fresh_dir, fsync=False)))
    assert _csv(fresh, tmp_path / "fresh.csv") == baseline_csv
    rows.append({"mode": "campaign_fresh", "wall_seconds": round(fresh_s, 3),
                 "samples": len(fresh.store)})

    # Kill one worker mid-campaign with no restart budget, then resume.
    crash_dir = tmp_path / "crashed"
    with pytest.raises(ShardWorkerError):
        run_experiment(
            cfg, collect_nbench=False, shards=SHARDS,
            supervise=SupervisorPolicy(max_restarts=0),
            recovery=RecoveryConfig(
                run_dir=crash_dir, fsync=False, crash_shard=0,
                crash_at=CrashSpec(derive_kill_iteration(cfg),
                                   "post_checkpoint")))
    resumed, resume_s = _timed(
        lambda: run_experiment(resume_from=crash_dir))
    assert _csv(resumed, tmp_path / "resume.csv") == baseline_csv
    resume_speedup = fresh_s / resume_s
    rows.append({"mode": "campaign_resume",
                 "wall_seconds": round(resume_s, 3),
                 "samples": len(resumed.store),
                 "speedup_vs_fresh": round(resume_speedup, 3)})

    asserted = cpus >= 4
    report = {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": cpus,
        "shards": SHARDS,
        "supervision_overhead_target_pct": OVERHEAD_TARGET_PCT,
        "resume_speedup_target": RESUME_SPEEDUP_TARGET,
        "target_asserted": asserted,
        "runs": rows,
    }
    write_bench_report("shard_recovery", report,
                       env_var="REPRO_SHARD_RECOVERY_BENCH_OUT")

    table = Table(["mode", "wall s", "note"], ndigits=2)
    table.add_row(["pool", pool_s, "-"])
    table.add_row(["supervised", sup_s, f"{overhead_pct:+.1f}% overhead"])
    table.add_row(["campaign fresh", fresh_s, "journaled + manifest"])
    table.add_row(["campaign resume", resume_s,
                   f"{resume_speedup:.2f}x vs fresh"])
    show("shard recovery costs", table.render())

    if asserted:
        assert overhead_pct <= OVERHEAD_TARGET_PCT, (
            f"supervision overhead {overhead_pct:.1f}% exceeds the "
            f"{OVERHEAD_TARGET_PCT}% budget on a {cpus}-CPU host"
        )
        assert resume_speedup >= RESUME_SPEEDUP_TARGET, (
            f"resume speedup {resume_speedup:.2f}x below the "
            f"{RESUME_SPEEDUP_TARGET}x target on a {cpus}-CPU host"
        )
