"""Fig 5: weekly distribution of CPU idleness, memory and network rates.

Signature features: the Tuesday-afternoon idleness dip (below ~91%, the
CPU-heavy class), idleness otherwise in the 95-100% band with night and
weekend plateaus, RAM load never below ~50%, swap tracking RAM with
damped high frequencies, and receive rates several times send rates.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.analysis.weekly import weekly_profiles
from repro.report.paperdata import PAPER
from repro.report.series import render_sparkline
from repro.report.tables import render_comparison


def test_fig5_profile_speed(benchmark, paper_trace, paper_pairs):
    profiles = benchmark(weekly_profiles, paper_trace, paper_pairs)
    assert profiles.n_bins == 168


def test_fig5_left_cpu_ram_swap(benchmark, paper_report):
    benchmark(paper_report.weekly.minimum_idleness)
    wp = paper_report.weekly
    show(
        "fig5L",
        "CPU idle: " + render_sparkline(wp.cpu_idle_pct, lo=88, hi=100) + "\n"
        "RAM load: " + render_sparkline(wp.ram_load_pct, lo=45, hi=75) + "\n"
        "swap    : " + render_sparkline(wp.swap_load_pct, lo=20, hi=40) + "\n"
        + render_comparison(paper_report.fig5_rows, title="Fig 5: weekly"),
    )
    dip_hour, dip_val = wp.minimum_idleness()
    assert int(dip_hour // 24) == 1          # Tuesday
    assert 14.0 <= dip_hour % 24 <= 16.0      # the practical class slot
    assert dip_val < 96.0                     # paper: below 91%
    # outside the dip, idleness lives in the 95-100 band
    assert np.nanmean(wp.cpu_idle_pct) > 95.0
    # RAM never below ~50%
    assert np.nanmin(wp.ram_load_pct) > 48.0
    # swap is a smoothed follower of RAM
    valid = np.isfinite(wp.ram_load_pct) & np.isfinite(wp.swap_load_pct)
    assert np.corrcoef(wp.ram_load_pct[valid], wp.swap_load_pct[valid])[0, 1] > 0.5
    assert wp.swap_load_pct[valid].std() < wp.ram_load_pct[valid].std()


def test_fig5_right_network(benchmark, paper_report):
    benchmark(lambda: paper_report.weekly.recv_bps.sum())
    wp = paper_report.weekly
    show(
        "fig5R",
        "recv bps: " + render_sparkline(wp.recv_bps) + "\n"
        "sent bps: " + render_sparkline(wp.sent_bps),
    )
    valid = np.isfinite(wp.recv_bps) & np.isfinite(wp.sent_bps) & (wp.sent_bps > 0)
    # client role: received rates several times higher than sent
    assert wp.recv_bps[valid].mean() > 2.0 * wp.sent_bps[valid].mean()
    # night/weekend pattern: Sunday bins far quieter than Tuesday's
    hours = np.arange(168)
    tue = (hours >= 24) & (hours < 48) & valid
    sun = (hours >= 144) & (hours < 168) & valid
    if sun.any():
        assert np.nanmean(wp.recv_bps[tue]) > np.nanmean(wp.recv_bps[sun])


def test_fig5_night_plateau(benchmark, paper_report):
    benchmark(paper_report.weekly.weekday_mask, 1)
    """04:00-08:00: classrooms closed; survivors are ~fully idle."""
    wp = paper_report.weekly
    night_bins = []
    for day in range(1, 5):  # Tue-Fri mornings
        night_bins.extend(range(day * 24 + 5, day * 24 + 8))
    vals = wp.cpu_idle_pct[night_bins]
    assert np.nanmean(vals) > 99.0
