"""Resilience control-plane overhead on a fault-free run.

Times the same paper-scale experiment (``REPRO_BENCH_DAYS`` days, 169
machines, no fault plan) three ways:

- **baseline** -- ``resilience=None`` (the default, pre-PR behaviour),
- **inert policy** -- a policy whose thresholds are set so no mechanism
  can ever act (breaker needs a billion consecutive failures, hedging
  disabled, the adaptive deadline clamped to the fixed ``off_timeout``):
  the run does bit-identical work to the baseline while still paying
  the full hot path -- :meth:`ResilienceControl.admit` and
  :meth:`~ResilienceControl.observe` per machine-slot plus the O(n)
  shed plan per pass.  This is the clean overhead measurement.
- **default policy** -- :class:`repro.resilience.ResiliencePolicy`
  defaults.  On the organic fleet breakers do trip overnight (machines
  powered off for hours look exactly like dead ones), so this run does
  *less* probing work; it is timed for the user-visible wall clock, not
  for an apples-to-apples hot-path comparison.

Overhead budget
---------------
Both policy-attached runs must stay within **5%** of the baseline wall
clock.  The budget holds because the fault-free hot path pays one dict
lookup plus a handful of float operations per machine-slot, and the
per-pass shed plan never finds the budget binding (a fault-free pass
costs ~250 s against a 720 s budget), so nothing is sorted or shed.

``REPRO_BENCH_DAYS=14`` gives a quick but noisier check; the assertion
adds a small absolute slack so short runs don't fail on scheduler
jitter.
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import bench_days, bench_seed, show, write_bench_report
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.report.tables import Table
from repro.resilience import ResiliencePolicy

#: Maximum tolerated policy-on/baseline wall-clock ratio.
OVERHEAD_BUDGET = 1.05
#: Absolute slack (seconds) so short runs tolerate scheduler jitter.
NOISE_SLACK = 0.5
#: Timed repetitions per configuration (minimum taken -- noise is
#: strictly additive, so the fastest repetition is the best estimate).
ROUNDS = 3


def inert_policy() -> ResiliencePolicy:
    """A policy that pays the full hot path but never changes behaviour.

    The breaker threshold is unreachable, hedging is off, and the
    adaptive deadline's lower clamp equals the executor's 1.5 s
    ``off_timeout`` so ``min(off_timeout, deadline)`` is always the
    fixed timeout.  The resulting trace is bit-identical to baseline.
    """
    return ResiliencePolicy(breaker_min_failures=10**9,
                            hedge_enabled=False,
                            deadline_min=1.5)


def _timed_run(policy):
    """One timed run; returns ``(coordinator, n_samples, wall_seconds)``."""
    cfg = ExperimentConfig(days=bench_days(), seed=bench_seed())
    gc.collect()
    t0 = time.perf_counter()
    result = run_experiment(cfg, collect_nbench=False, resilience=policy)
    elapsed = time.perf_counter() - t0
    return result.coordinator, len(result.store), elapsed


def _best_of(policy_factory, rounds=ROUNDS):
    runs = [_timed_run(policy_factory()) for _ in range(rounds)]
    coord, n_samples, _ = runs[0]
    return coord, n_samples, min(t for _, _, t in runs)


def test_resilience_overhead_within_budget():
    # warm up imports/allocators so the first timed config isn't penalised
    run_experiment(ExperimentConfig(days=1, seed=bench_seed()),
                   collect_nbench=False)

    _, n_base, base = _best_of(lambda: None)
    inert_coord, n_inert, inert = _best_of(inert_policy)
    coord, _, on = _best_of(ResiliencePolicy)

    # the inert policy did bit-identical work: same trace volume, no
    # mechanism ever fired
    assert n_inert == n_base
    assert inert_coord.shed == 0
    assert inert_coord.breaker_skipped == 0
    assert inert_coord.hedges == 0
    # the default policy never sheds either (the budget is never binding
    # on a fault-free fleet); breakers may trip on overnight power-offs
    assert coord.shed == 0

    table = Table(["configuration", "wall s", "overhead"], ndigits=2)
    for name, seconds in (("baseline (resilience=None)", base),
                          ("inert policy (hot path only)", inert),
                          ("default ResiliencePolicy", on)):
        table.add_row([name, seconds, f"{(seconds - base) / base:+.1%}"])
    show("resilience control-plane overhead", table.render())

    write_bench_report("resilience_overhead", {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "overhead_target": OVERHEAD_BUDGET,
        "noise_slack_seconds": NOISE_SLACK,
        "target_asserted": True,
        "runs": [
            {"configuration": "baseline", "wall_seconds": round(base, 3),
             "samples": n_base},
            {"configuration": "inert_policy", "wall_seconds": round(inert, 3),
             "samples": n_inert,
             "overhead": round((inert - base) / base, 4)},
            {"configuration": "default_policy", "wall_seconds": round(on, 3),
             "overhead": round((on - base) / base, 4)},
        ],
    }, env_var="REPRO_RESILIENCE_BENCH_OUT")

    assert inert <= base * OVERHEAD_BUDGET + NOISE_SLACK, (
        f"inert-policy run {inert:.2f}s exceeds {OVERHEAD_BUDGET:.0%} of "
        f"baseline {base:.2f}s"
    )
    assert on <= base * OVERHEAD_BUDGET + NOISE_SLACK, (
        f"policy-on run {on:.2f}s exceeds {OVERHEAD_BUDGET:.0%} of "
        f"baseline {base:.2f}s"
    )
