"""Shard-parallel scaling of the paper-scale experiment.

Times ``run_experiment(paper_config(...))`` at shard counts 1, 2 and 4
(same seed, same horizon), checks that every merged trace is
byte-identical to the single-shard run's CSV export, and writes a JSON
report with the wall-clock numbers.

Speedup expectations
--------------------
Shards run on a :class:`concurrent.futures.ProcessPoolExecutor`, so the
achievable speedup is bounded by the physical core count.  The target
from docs/sharding.md -- **>= 1.5x at 4 shards** -- is asserted only
when the host actually has >= 4 CPUs; on smaller hosts (including
single-core CI containers, where parallel shards necessarily time-slice
one core and each shard still replays the full fleet simulation) the
bench still verifies byte-equality and records the measured ratios, and
``cpu_count`` in the JSON report documents why the target could not
materialise.  Reference measurement on an unloaded 8-core host at
``REPRO_BENCH_DAYS=14``: 1 shard 7.9s, 2 shards 4.6s (1.7x), 4 shards
3.1s (2.5x).

Environment knobs: ``REPRO_BENCH_DAYS``/``REPRO_BENCH_SEED`` as for the
rest of the harness, ``REPRO_SHARD_BENCH_OUT`` for the JSON report path
(default ``BENCH_shard_scaling.json`` in the working directory, the
shared ``BENCH_*.json`` schema).
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import (
    bench_days,
    bench_seed,
    show,
    write_bench_report,
)
from repro.config import paper_config
from repro.experiment import run_experiment
from repro.report.tables import Table

#: Shard counts measured; 1 is the sequential baseline.
SHARD_COUNTS = (1, 2, 4)
#: Wall-clock ratio required at 4 shards -- asserted only on hosts with
#: at least that many CPUs (see module docstring).
SPEEDUP_TARGET = 1.5


def _timed_run(tmp_path, shards):
    """Run the paper config at ``shards`` and return ``(csv_bytes, s)``."""
    cfg = paper_config(seed=bench_seed(), days=bench_days())
    gc.collect()
    t0 = time.perf_counter()
    result = run_experiment(cfg, collect_nbench=False, shards=shards)
    elapsed = time.perf_counter() - t0
    path = tmp_path / f"shards{shards}.csv"
    result.store.write_csv(path)
    return path.read_bytes(), len(result.store), elapsed


def test_shard_scaling(tmp_path):
    cpus = os.cpu_count() or 1
    baseline_csv = None
    rows = []
    for shards in SHARD_COUNTS:
        csv, n_samples, seconds = _timed_run(tmp_path, shards)
        if baseline_csv is None:
            baseline_csv = csv
        # the tentpole guarantee, re-checked at paper scale
        assert csv == baseline_csv, (
            f"{shards}-shard merged trace differs from sequential"
        )
        rows.append({"shards": shards, "wall_seconds": round(seconds, 3),
                     "samples": n_samples,
                     "speedup": round(rows[0]["wall_seconds"] / seconds, 3)
                     if rows else 1.0})

    report = {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": cpus,
        "speedup_target_at_4_shards": SPEEDUP_TARGET,
        "target_asserted": cpus >= max(SHARD_COUNTS),
        "runs": rows,
    }
    write_bench_report("shard_scaling", report,
                       env_var="REPRO_SHARD_BENCH_OUT")

    table = Table(["shards", "wall s", "speedup"], ndigits=2)
    for row in rows:
        table.add_row([row["shards"], row["wall_seconds"],
                       f'{row["speedup"]:.2f}x'])
    show("shard scaling", table.render())

    if cpus >= max(SHARD_COUNTS):
        assert rows[-1]["speedup"] >= SPEEDUP_TARGET, (
            f"4-shard speedup {rows[-1]['speedup']:.2f}x below "
            f"{SPEEDUP_TARGET}x target on a {cpus}-CPU host"
        )
