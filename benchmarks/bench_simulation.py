"""Simulation-substrate performance: fleet throughput and trace handling.

Guards the hot paths called out in DESIGN.md section 6: the discrete-
event engine, a full fleet-day of simulation, and the columnar trace
construction over hundreds of thousands of samples.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.sim.engine import Simulator
from repro.traces.columnar import ColumnarTrace


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_after(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000


def test_one_fleet_day(benchmark):
    """One simulated day of 169 machines + DDC (the per-day unit cost)."""

    def run():
        return run_experiment(ExperimentConfig(days=1, seed=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.store) > 0


def test_columnar_build(benchmark, paper_run):
    """Sorting + materialising the struct-of-arrays trace view."""
    trace = benchmark(ColumnarTrace, paper_run.store)
    assert len(trace) == len(paper_run.store)


def test_trace_pairing(benchmark, paper_trace):
    """The consecutive-pair scan underlying every pairwise estimator."""
    i, j = benchmark(paper_trace.consecutive_pairs)
    assert i.size > 0 and i.size == j.size
