"""Simulation-substrate performance: fleet throughput and trace handling.

Guards the hot paths called out in DESIGN.md section 6: the discrete-
event engine, a full fleet-day of simulation, and the columnar trace
construction over hundreds of thousands of samples.

Like ``bench_shard_scaling.py`` and ``bench_fleet_scale.py``, the
module writes a machine-readable JSON report -- top-level ``days`` /
``seed`` / ``cpu_count`` plus a ``runs`` list with one row per bench --
so CI artefacts stay grep- and diff-friendly across the harness.
``REPRO_SIM_BENCH_OUT`` overrides the output path (default
``bench_simulation.json`` in the working directory).
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import bench_days, bench_seed
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.sim.engine import Simulator
from repro.traces.columnar import ColumnarTrace

#: Rows of the JSON report, appended by each bench as it completes.
_ROWS = []


def _min_seconds(benchmark):
    """Best wall time pytest-benchmark measured, or ``None`` if disabled."""
    try:
        return float(benchmark.stats.stats.min)
    except AttributeError:  # pragma: no cover - --benchmark-disable runs
        return None


def _record(bench, benchmark, **extra):
    seconds = _min_seconds(benchmark)
    row = {"bench": bench, **extra}
    if seconds is not None:
        row["wall_seconds"] = round(seconds, 6)
    _ROWS.append(row)


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    yield
    report = {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": os.cpu_count() or 1,
        "runs": _ROWS,
    }
    out = os.environ.get("REPRO_SIM_BENCH_OUT", "bench_simulation.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k chained events."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule_after(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 10_000
    _record("engine_event_throughput", benchmark, events=10_000)


def test_one_fleet_day(benchmark):
    """One simulated day of 169 machines + DDC (the per-day unit cost)."""

    def run():
        return run_experiment(ExperimentConfig(days=1, seed=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.store) > 0
    _record("one_fleet_day", benchmark, samples=len(result.store))


def test_columnar_build(benchmark, paper_run):
    """Sorting + materialising the struct-of-arrays trace view."""
    trace = benchmark(ColumnarTrace, paper_run.store)
    assert len(trace) == len(paper_run.store)
    _record("columnar_build", benchmark, samples=len(trace))


def test_trace_pairing(benchmark, paper_trace):
    """The consecutive-pair scan underlying every pairwise estimator."""
    i, j = benchmark(paper_trace.consecutive_pairs)
    assert i.size > 0 and i.size == j.size
    _record("trace_pairing", benchmark, pairs=int(i.size))
