"""Fig 2: interactive-session samples by relative hour (section 4.2).

The paper's discovery plot: mean CPU idleness per relative session hour,
crossing 99% around the 10th hour -- the evidence behind the >= 10 h
forgotten-login reclassification.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.analysis.sessions import (
    first_bucket_above,
    forgotten_stats,
    relative_hour_buckets,
)
from repro.report.paperdata import PAPER
from repro.report.series import render_sparkline
from repro.report.tables import render_comparison


def test_fig2_bucket_computation_speed(benchmark, paper_trace, paper_pairs):
    buckets = benchmark(relative_hour_buckets, paper_trace, paper_pairs)
    assert buckets.counts.sum() > 0


def test_fig2_idleness_gradient(benchmark, paper_report):
    benchmark(first_bucket_above, paper_report.buckets)
    buckets = paper_report.buckets
    spark = render_sparkline(buckets.idle_pct, lo=90.0, hi=100.0)
    show("fig2", f"Fig 2 idleness by relative hour: {spark}\n"
         + render_comparison(paper_report.fig2_rows,
                             title="Fig 2: forgotten sessions"))
    first = first_bucket_above(buckets)
    assert first is not None
    # paper: the [10-11) hour; accept a +-3 h window (stochastic usage)
    assert abs(first - PAPER.fig2_first_hour_above_99) <= 3
    # gradient: the first hours show clear interactive activity
    assert buckets.idle_pct[0] < 97.0
    # idleness grows (weakly) with session age over the first 12 hours
    valid = np.isfinite(buckets.idle_pct[:12])
    diffs = np.diff(buckets.idle_pct[:12][valid])
    assert (diffs >= -1.0).mean() > 0.7


def test_fig2_forgotten_accounting(benchmark, paper_trace):
    benchmark(forgotten_stats, paper_trace)
    fs = forgotten_stats(paper_trace)
    rows = [
        ("forgotten / login samples", PAPER.forgotten_fraction_of_login,
         fs.forgotten_fraction),
        ("forgotten / collected samples",
         PAPER.forgotten_samples / PAPER.samples,
         fs.forgotten_samples / len(paper_trace)),
    ]
    show("fig2b", render_comparison(rows, title="Section 4.2 accounting"))
    assert abs(fs.forgotten_fraction - PAPER.forgotten_fraction_of_login) < 0.11
