"""Ablation: boot-relative CPU accounting vs instantaneous sampling
(DESIGN.md section 5, item 3).

Section 4.2: "precisely to avoid misleading instantaneous values, CPU
usage is returned as the average CPU idleness percentage observed since
machine was booted".  This ablation builds a bursty synthetic load and
compares two estimators at a 15-minute period:

- the paper's: difference of the cumulative idle-thread counter, which
  recovers the interval average *exactly*,
- naive instantaneous sampling: reads the current busy fraction at each
  probe and averages, which is unbiased only in expectation and carries
  large variance under bursty load.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import show
from repro.machines.hardware import build_fleet
from repro.machines.machine import SimMachine
from repro.machines.smart import SmartDisk
from repro.report.tables import Table

PERIOD = 900.0
HORIZON = 7 * 86400.0


def _bursty_machine(seed: int):
    """A machine alternating short 100%-busy bursts with idle stretches."""
    spec = build_fleet()[0]
    m = SimMachine(spec, SmartDisk(spec.disk_serial, spec.disk_bytes))
    m.boot(0.0)
    rng = np.random.Generator(np.random.PCG64(seed))
    t = 0.0
    busy_time = 0.0
    while t < HORIZON:
        idle_len = float(rng.exponential(1200.0))
        burst_len = float(rng.exponential(120.0))
        m.set_cpu_busy(min(t, HORIZON), 0.0)
        t += idle_len
        if t >= HORIZON:
            break
        m.set_cpu_busy(t, 1.0)
        end = min(t + burst_len, HORIZON)
        busy_time += end - t
        t = end
    return m, busy_time / HORIZON


@pytest.fixture(scope="module")
def estimates():
    rows = []
    for seed in range(8):
        m, true_busy = _bursty_machine(seed)
        ts = np.arange(PERIOD, HORIZON + 1e-9, PERIOD)
        idle_counter = np.array([m.cpu_idle_seconds(t) for t in ts])
        # the paper's estimator over the whole horizon
        pairwise_idle = np.diff(np.concatenate([[0.0], idle_counter])) / PERIOD
        paper_busy = 1.0 - pairwise_idle.mean()
        # naive instantaneous estimator: busy fraction *at* sample times.
        # Reconstruct by comparing counter slope in an epsilon window.
        eps = 1.0
        inst_busy = np.array(
            [1.0 - (m.cpu_idle_seconds(t) - m.cpu_idle_seconds(t - eps)) / eps
             for t in ts]
        )
        naive_busy = float(inst_busy.mean())
        rows.append((true_busy, paper_busy, naive_busy))
    return np.array(rows)


def test_paper_estimator_is_exact(benchmark, estimates):
    benchmark(lambda: estimates.mean(axis=0))
    truth, paper, naive = estimates.T
    table = Table(["run", "true busy %", "counter-diff %", "instantaneous %"])
    for k in range(len(truth)):
        table.add_row([k, 100 * truth[k], 100 * paper[k], 100 * naive[k]])
    show("ablation-estimator", table.render())
    # counter differencing recovers the truth to numerical precision
    assert np.max(np.abs(paper - truth)) < 1e-9


def test_instantaneous_estimator_is_noisy(benchmark, estimates):
    benchmark(lambda: estimates.std(axis=0))
    truth, paper, naive = estimates.T
    paper_err = np.abs(paper - truth)
    naive_err = np.abs(naive - truth)
    # instantaneous sampling misses bursts: strictly worse on average
    assert naive_err.mean() > 100 * paper_err.mean()
    # and its error is material at this burstiness (order of the signal)
    assert naive_err.mean() > 0.005
