"""Table 1: fleet hardware characteristics and NBench indexes.

Regenerates the per-lab hardware table and the fleet totals quoted in
section 4.1 (56.62 GB of RAM, 6.66 TB of disk), and re-measures the
NBench indexes through the benchmark probe over the whole roster, as the
authors did with DDC.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.ddc.nbenchprobe import NBenchProbe, parse_nbench_output
from repro.machines.hardware import TABLE1_LABS, build_fleet, fleet_totals
from repro.machines.machine import SimMachine
from repro.machines.smart import SmartDisk
from repro.machines.winapi import Win32Api
from repro.report.paperdata import PAPER
from repro.report.tables import Table, render_comparison
from repro.sim.random import RandomStreams


def _probe_fleet_indexes():
    """Run the NBench probe on every machine, lab-averaged."""
    probe = NBenchProbe(RandomStreams(2005).stream("nbench"))
    by_lab: dict[str, list[tuple[float, float]]] = {}
    for spec in build_fleet():
        m = SimMachine(spec, SmartDisk(spec.disk_serial, spec.disk_bytes))
        m.boot(0.0)
        report = parse_nbench_output(probe.run(Win32Api(m), 0.0).stdout)
        by_lab.setdefault(spec.lab, []).append((report["int"], report["fp"]))
    return {
        lab: (float(np.mean([r[0] for r in rows])), float(np.mean([r[1] for r in rows])))
        for lab, rows in by_lab.items()
    }


def test_table1_fleet_totals(benchmark):
    totals = benchmark(fleet_totals, build_fleet())
    rows = [
        ("machines", PAPER.n_machines, totals["machines"]),
        ("total RAM GB", PAPER.total_ram_gb, totals["ram_gb"]),
        ("total disk TB", PAPER.total_disk_tb, totals["disk_tb"]),
        ("avg NBench INT", PAPER.avg_nbench_int, totals["avg_int"]),
        ("avg NBench FP", PAPER.avg_nbench_fp, totals["avg_fp"]),
    ]
    show("table1", render_comparison(rows, title="Table 1: fleet totals"))
    assert totals["machines"] == 169
    assert abs(totals["ram_gb"] - PAPER.total_ram_gb) / PAPER.total_ram_gb < 0.03
    assert abs(totals["disk_tb"] - PAPER.total_disk_tb) / PAPER.total_disk_tb < 0.04


def test_table1_nbench_probe_pass(benchmark):
    measured = benchmark.pedantic(_probe_fleet_indexes, rounds=1, iterations=1)
    table = Table(["lab", "INT (paper)", "INT (probe)", "FP (paper)", "FP (probe)"])
    for lab in TABLE1_LABS:
        got = measured[lab.name]
        table.add_row([lab.name, lab.nbench_int, got[0], lab.nbench_fp, got[1]])
    show("table1-nbench", table.render())
    for lab in TABLE1_LABS:
        got_int, got_fp = measured[lab.name]
        assert abs(got_int - lab.nbench_int) / lab.nbench_int < 0.05
        assert abs(got_fp - lab.nbench_fp) / lab.nbench_fp < 0.05
