"""Coordination overhead of the networked shard control plane.

One question, one JSON artifact (``BENCH_distributed.json``): what does
moving the campaign's control plane from in-process pipes to loopback
TCP cost?  The networked coordinator adds socket framing (length + CRC
+ sequence per message), reader threads, lease bookkeeping and worker
process spawn-over-connect on top of the local supervisor's semantics.
Target from docs/distributed.md: **<= 10%** wall-clock overhead versus
the local supervised campaign at 2 shards, asserted only on hosts with
>= 4 CPUs (on smaller hosts the coordinator's threads time-slice the
workers' cores and the comparison measures the scheduler, not the
control plane).

The merged bytes are asserted identical in the same breath -- an
overhead number for a divergent result would be meaningless.

Environment knobs: ``REPRO_BENCH_DAYS`` / ``REPRO_BENCH_SEED`` as for
the rest of the harness, ``REPRO_DISTRIBUTED_BENCH_OUT`` for the
report path.
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import (
    bench_days,
    bench_seed,
    show,
    write_bench_report,
)
from repro.config import paper_config
from repro.experiment import run_experiment
from repro.report.tables import Table
from repro.shard.net.config import NetConfig
from repro.shard.net.worker import NetWorkerPolicy

#: Campaign width measured (matches the shard-recovery bench).
SHARDS = 2
#: Networked wall-clock overhead budget versus the local supervisor.
OVERHEAD_TARGET_PCT = 10.0
#: Fast reconnect so worker spawn-over-connect is not dominated by
#: backoff sleeps.
WORKER_POLICY = NetWorkerPolicy(connect_attempts=40, backoff_base=0.02,
                                backoff_cap=0.2)


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _csv(result, path):
    result.store.write_csv(path)
    return path.read_bytes()


def test_distributed_overhead(tmp_path):
    cpus = os.cpu_count() or 1
    cfg = paper_config(seed=bench_seed(), days=bench_days())
    rows = []

    supervised, sup_s = _timed(
        lambda: run_experiment(cfg, collect_nbench=False, shards=SHARDS,
                               supervise=True))
    baseline_csv = _csv(supervised, tmp_path / "sup.csv")
    rows.append({"mode": "supervised_local",
                 "wall_seconds": round(sup_s, 3),
                 "samples": len(supervised.store)})

    networked, net_s = _timed(
        lambda: run_experiment(
            cfg, collect_nbench=False, shards=SHARDS,
            net=NetConfig(spawn_workers=SHARDS,
                          worker_policy=WORKER_POLICY)))
    assert _csv(networked, tmp_path / "net.csv") == baseline_csv
    assert networked.degraded is None
    overhead_pct = 100.0 * (net_s / sup_s - 1.0)
    rows.append({"mode": "networked_loopback",
                 "wall_seconds": round(net_s, 3),
                 "samples": len(networked.store),
                 "overhead_pct": round(overhead_pct, 2)})

    asserted = cpus >= 4
    report = {
        "days": bench_days(),
        "seed": bench_seed(),
        "cpu_count": cpus,
        "shards": SHARDS,
        "overhead_target_pct": OVERHEAD_TARGET_PCT,
        "target_asserted": asserted,
        "runs": rows,
    }
    write_bench_report("distributed", report,
                       env_var="REPRO_DISTRIBUTED_BENCH_OUT")

    table = Table(["mode", "wall s", "note"], ndigits=2)
    table.add_row(["supervised local", sup_s, "-"])
    table.add_row(["networked loopback", net_s,
                   f"{overhead_pct:+.1f}% overhead"])
    show("distributed coordination costs", table.render())

    if asserted:
        assert overhead_pct <= OVERHEAD_TARGET_PCT, (
            f"networked coordination overhead {overhead_pct:.1f}% "
            f"exceeds the {OVERHEAD_TARGET_PCT}% budget on a "
            f"{cpus}-CPU host"
        )
