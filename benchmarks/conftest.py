"""Shared fixtures for the benchmark/reproduction harness.

The session-scoped ``paper_run`` executes the paper's experiment once
(77 days, 169 machines by default) and every bench both *times* its
analysis stage with pytest-benchmark and *prints* the paper-vs-measured
comparison for its table or figure.

Environment knobs:

- ``REPRO_BENCH_DAYS``: experiment length (default 77).  Set e.g. 14 for
  quick iteration; comparisons remain meaningful, only noisier.
- ``REPRO_BENCH_SEED``: root seed (default 2005).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cpu import pairwise_cpu
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.report.experiments import generate_report


def bench_days() -> int:
    """Experiment length used by the harness."""
    return int(os.environ.get("REPRO_BENCH_DAYS", "77"))


def bench_seed() -> int:
    """Root seed used by the harness."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2005"))


@pytest.fixture(scope="session")
def paper_run():
    """The monitored experiment every figure/table is computed from."""
    return run_experiment(ExperimentConfig(days=bench_days(), seed=bench_seed()))


@pytest.fixture(scope="session")
def paper_trace(paper_run):
    return paper_run.trace


@pytest.fixture(scope="session")
def paper_pairs(paper_trace):
    return pairwise_cpu(paper_trace)


@pytest.fixture(scope="session")
def paper_report(paper_run):
    """All analyses of the paper run, computed once."""
    return generate_report(paper_run)


def show(title: str, text: str) -> None:
    """Print a bench's comparison table (visible with ``pytest -s``)."""
    print(f"\n{text}\n")


#: Keys every ``BENCH_*.json`` perf artifact must carry (the shared
#: schema: provenance, host, whether the perf target was actually
#: asserted on this host, and the per-configuration measurements).
BENCH_REQUIRED_KEYS = frozenset(
    {"seed", "cpu_count", "target_asserted", "runs"}
)


def write_bench_report(name: str, report: dict, *,
                       env_var: str | None = None) -> str:
    """Write a perf artifact in the shared ``BENCH_<name>.json`` schema.

    Every overhead/scaling bench funnels its JSON report through here so
    the artifacts stay machine-comparable across PRs: the report must
    carry :data:`BENCH_REQUIRED_KEYS` (plus at least one bench-specific
    ``*_target`` key), ``runs`` must be a list of flat row dicts, and
    the output lands in ``BENCH_<name>.json`` in the working directory
    unless ``env_var`` (e.g. ``REPRO_FLEET_BENCH_OUT``) overrides it.
    Returns the path written.
    """
    missing = BENCH_REQUIRED_KEYS - report.keys()
    if missing:
        raise ValueError(
            f"bench report {name!r} is missing required keys: "
            f"{sorted(missing)}"
        )
    if not any(k.endswith("_target") or "_target_" in k for k in report):
        raise ValueError(
            f"bench report {name!r} must name its perf target "
            "(a '*_target' key)"
        )
    if not isinstance(report["runs"], list):
        raise ValueError(f"bench report {name!r}: 'runs' must be a list")
    out = os.environ.get(env_var or "", "") or f"BENCH_{name}.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return out
