"""Shared fixtures for the benchmark/reproduction harness.

The session-scoped ``paper_run`` executes the paper's experiment once
(77 days, 169 machines by default) and every bench both *times* its
analysis stage with pytest-benchmark and *prints* the paper-vs-measured
comparison for its table or figure.

Environment knobs:

- ``REPRO_BENCH_DAYS``: experiment length (default 77).  Set e.g. 14 for
  quick iteration; comparisons remain meaningful, only noisier.
- ``REPRO_BENCH_SEED``: root seed (default 2005).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.cpu import pairwise_cpu
from repro.config import ExperimentConfig
from repro.experiment import run_experiment
from repro.report.experiments import generate_report


def bench_days() -> int:
    """Experiment length used by the harness."""
    return int(os.environ.get("REPRO_BENCH_DAYS", "77"))


def bench_seed() -> int:
    """Root seed used by the harness."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2005"))


@pytest.fixture(scope="session")
def paper_run():
    """The monitored experiment every figure/table is computed from."""
    return run_experiment(ExperimentConfig(days=bench_days(), seed=bench_seed()))


@pytest.fixture(scope="session")
def paper_trace(paper_run):
    return paper_run.trace


@pytest.fixture(scope="session")
def paper_pairs(paper_trace):
    return pairwise_cpu(paper_trace)


@pytest.fixture(scope="session")
def paper_report(paper_run):
    """All analyses of the paper run, computed once."""
    return generate_report(paper_run)


def show(title: str, text: str) -> None:
    """Print a bench's comparison table (visible with ``pytest -s``)."""
    print(f"\n{text}\n")
