"""Host-side NBench kernel timing (the real benchmark, really run).

Times each of the ten re-implemented BYTEmark kernels on the host with
pytest-benchmark -- the measurement path the authors' benchmark probe
executed on every classroom machine.
"""

from __future__ import annotations

import pytest

from repro.nbench.index import compute_indexes
from repro.nbench.kernels import ALL_KERNELS
from repro.nbench.runner import run_benchmark_suite


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_kernel_speed(benchmark, kernel):
    checksum = benchmark(kernel.run, 0)
    assert isinstance(checksum, int)


def test_full_suite_indexes(benchmark):
    """The whole ten-kernel suite, aggregated into INT/FP indexes."""

    def suite():
        timings, int_idx, fp_idx = run_benchmark_suite(min_duration=0.02)
        return int_idx, fp_idx

    int_idx, fp_idx = benchmark.pedantic(suite, rounds=1, iterations=1)
    assert int_idx > 0 and fp_idx > 0
    # sanity: recomputing indexes from rates is self-consistent
    timings, i2, f2 = run_benchmark_suite(min_duration=0.02)
    i3, f3 = compute_indexes({n: t.rate for n, t in timings.items()})
    assert i2 == pytest.approx(i3)
    assert f2 == pytest.approx(f3)
