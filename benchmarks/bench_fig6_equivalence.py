"""Fig 6 / section 5.4: cluster-equivalence ratio and the 2:1 rule.

The paper's punchline: 169 non-dedicated classroom machines are worth
roughly half a dedicated cluster (ratio 0.51 = 0.26 from occupied +
0.25 from user-free machine time), computed with NBench-normalised
performance weights.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import show
from repro.analysis.equivalence import cluster_equivalence
from repro.report.paperdata import PAPER
from repro.report.series import render_sparkline
from repro.report.tables import render_comparison


def test_fig6_equivalence_speed(benchmark, paper_trace, paper_pairs):
    eq = benchmark(cluster_equivalence, paper_trace, pairs=paper_pairs)
    assert 0.0 < eq.ratio_total < 1.0


def test_fig6_two_to_one_rule(benchmark, paper_report):
    benchmark(lambda: paper_report.equivalence.ratio_total)
    eq = paper_report.equivalence
    spark = render_sparkline(eq.weekly_ratio, lo=0.0, hi=1.0)
    show("fig6", f"weekly equivalence: {spark}\n"
         + render_comparison(paper_report.fig6_rows,
                             title="Fig 6: cluster equivalence"))
    # the 2:1 rule: ratio ~ 0.5
    assert abs(eq.ratio_total - PAPER.equivalence_total) < 0.06
    # split roughly even between occupied and free machine time
    assert abs(eq.ratio_occupied - PAPER.equivalence_occupied) < 0.06
    assert abs(eq.ratio_free - PAPER.equivalence_free) < 0.06


def test_fig6_weekly_distribution(benchmark, paper_report):
    benchmark(lambda: paper_report.equivalence.weekly_ratio.copy())
    eq = paper_report.equivalence
    valid = np.isfinite(eq.weekly_ratio)
    # weekday working hours deliver more than Sunday
    hours = eq.weekly_hours
    tue_afternoon = valid & (hours >= 24 + 9) & (hours < 24 + 20)
    sunday = valid & (hours >= 144) & (hours < 168)
    assert np.nanmean(eq.weekly_ratio[tue_afternoon]) > np.nanmean(
        eq.weekly_ratio[sunday]
    )
    # the ratio never exceeds 1 (cannot beat a dedicated cluster)
    assert np.nanmax(eq.weekly_ratio) <= 1.0 + 1e-9


def test_fig6_weights_matter(benchmark, paper_trace, paper_pairs):
    from repro.analysis.equivalence import machine_weights
    benchmark(machine_weights, paper_trace.meta)
    """Disabling the NBench weights changes the ratio (heterogeneity)."""
    import copy

    meta = paper_trace.meta
    weighted = cluster_equivalence(paper_trace, meta, pairs=paper_pairs)
    unweighted_meta = copy.copy(meta)
    unweighted_meta.statics = {}
    unweighted = cluster_equivalence(paper_trace, unweighted_meta, pairs=paper_pairs)
    # demand correlates with machine speed, so weighting shifts the ratio up
    assert weighted.ratio_total != unweighted.ratio_total
    assert weighted.ratio_total > unweighted.ratio_total - 0.01
